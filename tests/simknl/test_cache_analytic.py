"""Tests for the analytic streaming cache model, including ground-truth
agreement with the functional line-level simulator."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.simknl.cache import DirectMappedCache
from repro.simknl.cache_analytic import CacheTraffic, StreamingCacheModel


class TestConstruction:
    def test_usable_capacity(self):
        m = StreamingCacheModel(1024, 64)
        assert m.usable_capacity == 1024

    def test_tag_overhead(self):
        m = StreamingCacheModel(1024, 64, tag_overhead=0.25)
        assert m.usable_capacity == 768

    def test_fits(self):
        m = StreamingCacheModel(1024, 64)
        assert m.fits(1024)
        assert not m.fits(1025)

    def test_invalid_params(self):
        with pytest.raises(ConfigError):
            StreamingCacheModel(32, 64)
        with pytest.raises(ConfigError):
            StreamingCacheModel(1024, 64, tag_overhead=1.0)


class TestFittingRegime:
    def test_single_pass_all_cold(self):
        m = StreamingCacheModel(4096, 64)
        t = m.stream(1024, passes=1)
        assert t.misses == 16
        assert t.hits == 0
        assert t.ddr_bytes == 1024

    def test_later_passes_hit(self):
        m = StreamingCacheModel(4096, 64)
        t = m.stream(1024, passes=3)
        assert t.misses == 16
        assert t.hits == 32
        assert t.ddr_bytes == 1024  # only the cold fill

    def test_warm_start_no_misses(self):
        m = StreamingCacheModel(4096, 64)
        t = m.stream(1024, passes=2, cold=False)
        assert t.misses == 0
        assert t.hits == 32
        assert t.ddr_bytes == 0

    def test_dirty_written_back_once(self):
        m = StreamingCacheModel(4096, 64)
        t = m.stream(1024, passes=3, write_fraction=1.0)
        assert t.writebacks == 16
        assert t.ddr_bytes == 1024 + 1024

    def test_no_flush_keeps_dirty_resident(self):
        m = StreamingCacheModel(4096, 64)
        t = m.stream(1024, passes=1, write_fraction=1.0, flush=False)
        assert t.writebacks == 0


class TestThrashingRegime:
    def test_every_pass_misses(self):
        m = StreamingCacheModel(1024, 64)  # 16 lines
        t = m.stream(2048, passes=3)  # 32 lines
        assert t.misses == 96
        assert t.hits == 0
        assert t.hit_rate == 0.0

    def test_ddr_traffic_scales_with_passes(self):
        m = StreamingCacheModel(1024, 64)
        t1 = m.stream(2048, passes=1)
        t3 = m.stream(2048, passes=3)
        assert t3.ddr_bytes == pytest.approx(3 * t1.ddr_bytes)

    def test_writebacks_every_pass(self):
        m = StreamingCacheModel(1024, 64)
        t = m.stream(2048, passes=2, write_fraction=1.0)
        # 32 lines dirtied and evicted on each of the 2 passes.
        assert t.writebacks == 64

    def test_amplification_above_one(self):
        """Thrashing cache mode moves more DDR bytes than flat mode would."""
        m = StreamingCacheModel(1024, 64)
        t = m.stream(16 * 1024, passes=1, write_fraction=0.5)
        assert t.ddr_amplification > 0.4


class TestEdgeCases:
    def test_zero_working_set(self):
        m = StreamingCacheModel(1024, 64)
        t = m.stream(0, passes=5)
        assert t == CacheTraffic(0.0, 0.0, 0, 0, 0)

    def test_zero_passes(self):
        m = StreamingCacheModel(1024, 64)
        assert m.stream(1024, passes=0).misses == 0

    def test_partial_line_rounds_up(self):
        m = StreamingCacheModel(1024, 64)
        assert m.stream(65, passes=1).misses == 2

    def test_invalid_args(self):
        m = StreamingCacheModel(1024, 64)
        with pytest.raises(ConfigError):
            m.stream(-1)
        with pytest.raises(ConfigError):
            m.stream(10, passes=-1)
        with pytest.raises(ConfigError):
            m.stream(10, write_fraction=1.5)

    def test_multipliers_zero_workload(self):
        m = StreamingCacheModel(1024, 64)
        assert m.multipliers(0, 1) == {"mcdram": 0.0, "ddr": 0.0}

    def test_multipliers_fitting(self):
        """Fitting working set: mcdram-dominant multipliers."""
        m = StreamingCacheModel(4096, 64)
        mult = m.multipliers(1024, passes=4)
        assert mult["ddr"] == pytest.approx(0.25)
        assert mult["mcdram"] > 1.0

    def test_multipliers_thrashing(self):
        m = StreamingCacheModel(1024, 64)
        mult = m.multipliers(4096, passes=1)
        assert mult["ddr"] == pytest.approx(1.0)
        assert mult["mcdram"] == pytest.approx(2.0)


# ---- agreement with the functional simulator -----------------------------


def _functional_stream(capacity, line, working_set, passes, write):
    c = DirectMappedCache(capacity=capacity, line_size=line)
    for _ in range(passes):
        c.access_range(0, working_set, write=write)
    c.flush()
    ddr, mcdram = c.traffic()
    return c.stats, ddr, mcdram


@settings(max_examples=80, deadline=None)
@given(
    nlines_cache=st.integers(min_value=1, max_value=64),
    nlines_ws=st.integers(min_value=1, max_value=256),
    passes=st.integers(min_value=1, max_value=4),
    write=st.booleans(),
)
def test_analytic_matches_functional(nlines_cache, nlines_ws, passes, write):
    """On whole-line sequential streams the analytic model reproduces
    the functional simulator's hit/miss/writeback counts exactly."""
    line = 64
    capacity = nlines_cache * line
    ws = nlines_ws * line
    stats, ddr_f, mcdram_f = _functional_stream(
        capacity, line, ws, passes, write
    )
    model = StreamingCacheModel(capacity, line)
    t = model.stream(ws, passes=passes, write_fraction=1.0 if write else 0.0)
    assert t.misses == stats.misses
    assert t.hits == stats.hits
    assert t.writebacks == stats.writebacks
    assert t.ddr_bytes == pytest.approx(ddr_f)
    assert t.mcdram_bytes == pytest.approx(mcdram_f)


@settings(max_examples=50, deadline=None)
@given(
    ws=st.integers(min_value=64, max_value=64 * 512),
    passes=st.integers(min_value=1, max_value=5),
)
def test_more_passes_never_reduces_traffic(ws, passes):
    m = StreamingCacheModel(64 * 32, 64)
    a = m.stream(ws, passes=passes)
    b = m.stream(ws, passes=passes + 1)
    assert b.ddr_bytes >= a.ddr_bytes
    assert b.mcdram_bytes >= a.mcdram_bytes


class TestPollution:
    """The Fig. 4 effect: foreign streams evict a cache-resident
    working set between its passes."""

    def test_no_pollution_matches_stream(self):
        m = StreamingCacheModel(1024, 64)
        assert m.stream_with_pollution(512, 4) == m.stream(512, 4)

    def test_pollution_adds_misses(self):
        m = StreamingCacheModel(64 * 256, 64)
        clean = m.stream(64 * 128, passes=6)
        dirty = m.stream_with_pollution(
            64 * 128, passes=6, pollution_bytes_per_pass=64 * 64
        )
        assert dirty.misses > clean.misses
        assert dirty.hits < clean.hits
        assert dirty.ddr_bytes > clean.ddr_bytes

    def test_full_pollution_evicts_everything(self):
        """Pollution >= cache: every pass re-misses the working set."""
        m = StreamingCacheModel(64 * 256, 64)
        t = m.stream_with_pollution(
            64 * 128, passes=4, pollution_bytes_per_pass=64 * 1024
        )
        assert t.hits == 0
        assert t.misses == 128 * 4

    def test_thrashing_unaffected(self):
        m = StreamingCacheModel(1024, 64)
        base = m.stream(4096, passes=2)
        assert m.stream_with_pollution(
            4096, passes=2, pollution_bytes_per_pass=10_000
        ) == base

    def test_negative_pollution_rejected(self):
        with pytest.raises(ConfigError):
            StreamingCacheModel(1024, 64).stream_with_pollution(
                512, 1, pollution_bytes_per_pass=-1
            )

    def test_matches_functional_victim_stream(self):
        """Analytic victim misses track a line-level interleaving of
        victim passes and fresh pollution sweeps within ~10%."""
        line, C, ws, P, passes = 64, 64 * 256, 64 * 128, 64 * 64, 6
        cache = DirectMappedCache(capacity=C, line_size=line)
        poll_base = 10_000_000
        victim_misses = 0
        for p in range(passes):
            m0 = cache.stats.misses
            cache.access_range(0, ws, write=False)
            victim_misses += cache.stats.misses - m0
            cache.access_range(poll_base + p * P, P, write=False)
        model = StreamingCacheModel(C, line)
        t = model.stream_with_pollution(
            ws, passes=passes, pollution_bytes_per_pass=P
        )
        assert t.misses == pytest.approx(victim_misses, rel=0.10)
