"""Tests for the discrete-event plan executor."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PlanError
from repro.simknl.engine import Engine, Phase, Plan, RunResult, run_flows
from repro.simknl.flows import Flow, Resource
from repro.units import GB


def _resources():
    return [Resource("ddr", 90 * GB), Resource("mcdram", 400 * GB)]


def _copy_flow(threads=10, nbytes=14.9 * GB, name="copy"):
    return Flow(name, threads, 4.8 * GB, {"ddr": 1.0, "mcdram": 1.0}, nbytes)


def _comp_flow(threads=100, nbytes=29.8 * GB, name="comp"):
    return Flow(name, threads, 6.78 * GB, {"mcdram": 1.0}, nbytes)


class TestPhaseValidation:
    def test_empty_phase_rejected(self):
        with pytest.raises(PlanError):
            Phase("p", []).validate()

    def test_zero_rate_with_bytes_rejected(self):
        f = Flow("f", 0, 0.0, {"ddr": 1.0}, 10.0)
        with pytest.raises(PlanError):
            Phase("p", [f]).validate()

    def test_total_bytes(self):
        p = Phase("p", [_copy_flow(nbytes=2.0), _comp_flow(nbytes=3.0)])
        assert p.total_bytes == pytest.approx(5.0)


class TestSinglePhase:
    def test_single_flow_time(self):
        """10 copy threads below DDR saturation: t = B / (p * S)."""
        r = run_flows([_copy_flow(threads=10)], _resources())
        assert r.elapsed == pytest.approx(14.9 / 48.0)

    def test_saturated_flow_time(self):
        r = run_flows([_copy_flow(threads=32)], _resources())
        assert r.elapsed == pytest.approx(14.9 / 90.0)

    def test_phase_time_is_max_of_independent_pools(self):
        """Unsaturated pools don't interact: phase ends at the slower."""
        copy = _copy_flow(threads=4, nbytes=4.8 * GB)  # 0.25 s at 19.2 GB/s
        comp = _comp_flow(threads=10, nbytes=67.8 * GB)  # 1.0 s at 67.8 GB/s
        r = run_flows([copy, comp], _resources())
        assert r.elapsed == pytest.approx(1.0)
        assert r.phase_times == [pytest.approx(1.0)]

    def test_early_finisher_frees_bandwidth(self):
        """When the copy pool drains, compute re-expands to full MCDRAM."""
        # Both pools want more MCDRAM than available together.
        copy = Flow("copy", 32, 4.8 * GB, {"ddr": 1.0, "mcdram": 1.0}, 9 * GB)
        comp = Flow("comp", 272, 6.78 * GB, {"mcdram": 1.0}, 400 * GB)
        r = run_flows([copy, comp], _resources())
        # Stage 1: copy at 90, comp at 310 for 0.1 s (copy moves 9 GB).
        # Stage 2: comp alone at 400 for remaining (400 - 31) / 400.
        expected = 0.1 + (400 * GB - 310 * GB * 0.1) / (400 * GB)
        assert r.elapsed == pytest.approx(expected, rel=1e-6)

    def test_traffic_counters(self):
        r = run_flows([_copy_flow(threads=10, nbytes=10 * GB)], _resources())
        assert r.traffic_gb("ddr") == pytest.approx(10.0)
        assert r.traffic_gb("mcdram") == pytest.approx(10.0)

    def test_traffic_respects_multipliers(self):
        f = Flow("f", 10, 4.8 * GB, {"ddr": 0.5, "mcdram": 2.0}, 10 * GB)
        r = run_flows([f], _resources())
        assert r.traffic_gb("ddr") == pytest.approx(5.0)
        assert r.traffic_gb("mcdram") == pytest.approx(20.0)

    def test_zero_byte_flow_completes_instantly(self):
        f = Flow("f", 1, 1 * GB, {"ddr": 1.0}, 0.0)
        r = run_flows([f, _copy_flow(threads=10, nbytes=4.8 * GB)], _resources())
        assert r.elapsed == pytest.approx(1.0 / 10.0)

    def test_events_recorded(self):
        eng = Engine(_resources(), record_events=True)
        plan = Plan("p", [Phase("s0", [_copy_flow(threads=10)])])
        r = eng.run(plan)
        assert len(r.events) == 1
        assert "copy" in r.events[0][1]

    def test_events_suppressed(self):
        eng = Engine(_resources(), record_events=False)
        plan = Plan("p", [Phase("s0", [_copy_flow(threads=10)])])
        assert eng.run(plan).events == []


class TestMultiPhase:
    def test_phases_are_barriers(self):
        """Sequential phases add their times."""
        p1 = Phase("a", [_copy_flow(threads=10, nbytes=4.8 * GB)])
        p2 = Phase("b", [_copy_flow(threads=10, nbytes=9.6 * GB)])
        r = Engine(_resources()).run(Plan("p", [p1, p2]))
        assert r.phase_times == [pytest.approx(0.1), pytest.approx(0.2)]
        assert r.elapsed == pytest.approx(0.3)

    def test_plan_rerunnable(self):
        """Running the same plan twice gives identical results."""
        plan = Plan("p", [Phase("a", [_copy_flow(threads=10)])])
        eng = Engine(_resources())
        r1 = eng.run(plan)
        r2 = eng.run(plan)
        assert r1.elapsed == pytest.approx(r2.elapsed)
        assert r1.traffic == pytest.approx(r2.traffic)

    def test_duplicate_resource_rejected(self):
        with pytest.raises(PlanError):
            Engine([Resource("ddr", 1.0), Resource("ddr", 2.0)])

    def test_plan_total_bytes(self):
        plan = Plan(
            "p",
            [
                Phase("a", [_copy_flow(nbytes=1.0)]),
                Phase("b", [_copy_flow(nbytes=2.0)]),
            ],
        )
        assert plan.total_bytes == pytest.approx(3.0)

    def test_add_is_chainable(self):
        plan = Plan("p").add(Phase("a", [_copy_flow()])).add(
            Phase("b", [_copy_flow()])
        )
        assert len(plan.phases) == 2


class TestRunResult:
    def test_traffic_gb_missing_resource(self):
        r = RunResult(elapsed=1.0, traffic={}, phase_times=[])
        assert r.traffic_gb("nope") == 0.0


@settings(max_examples=100, deadline=None)
@given(
    nbytes=st.floats(min_value=1.0, max_value=50 * GB),
    threads=st.integers(min_value=1, max_value=272),
)
def test_time_lower_bound_is_capacity_bound(nbytes, threads):
    """No schedule beats bytes / resource capacity."""
    r = run_flows(
        [Flow("f", threads, 4.8 * GB, {"ddr": 1.0}, nbytes)],
        [Resource("ddr", 90 * GB)],
    )
    assert r.elapsed >= nbytes / (90 * GB) * (1 - 1e-9)
    assert r.traffic["ddr"] == pytest.approx(nbytes, rel=1e-9)


@settings(max_examples=60, deadline=None)
@given(
    sizes=st.lists(
        st.floats(min_value=0.1 * GB, max_value=10 * GB), min_size=1, max_size=5
    )
)
def test_traffic_conservation(sizes):
    """Physical traffic equals logical bytes times multipliers, always."""
    flows = [
        Flow(f"f{i}", 16, 4.8 * GB, {"ddr": 1.0, "mcdram": 1.0}, s)
        for i, s in enumerate(sizes)
    ]
    r = run_flows(flows, _resources())
    total = sum(sizes)
    assert r.traffic["ddr"] == pytest.approx(total, rel=1e-6)
    assert r.traffic["mcdram"] == pytest.approx(total, rel=1e-6)


@settings(max_examples=60, deadline=None)
@given(
    b1=st.floats(min_value=0.1 * GB, max_value=20 * GB),
    b2=st.floats(min_value=0.1 * GB, max_value=20 * GB),
)
def test_concurrent_never_slower_than_sequential(b1, b2):
    """Sharing bandwidth cannot be worse than serializing the phases."""
    mk = lambda b: Flow("f", 32, 4.8 * GB, {"ddr": 1.0}, b)
    res = [Resource("ddr", 90 * GB)]
    concurrent = run_flows([mk(b1), mk(b2)], res).elapsed
    sequential = run_flows([mk(b1)], res).elapsed + run_flows([mk(b2)], res).elapsed
    assert concurrent <= sequential * (1 + 1e-9)


class TestStaticRates:
    def test_static_phase_is_max_of_components(self):
        """T_step = max(T_copyin, T_comp, T_copyout), the paper's
        pipelined-step law, holds exactly under static rates."""
        copy_in = _copy_flow(threads=8, nbytes=4.8 * GB, name="in")
        comp = _comp_flow(threads=50, nbytes=67.8 * GB, name="comp")
        plan = Plan("p", [Phase("s", [copy_in, comp], static_rates=True)])
        r = Engine(_resources()).run(plan)
        # Neither pool saturates a device, so each runs at p * S.
        t_in = 4.8 / (8 * 4.8)
        t_comp = 67.8 / (50 * 6.78)
        assert r.elapsed == pytest.approx(max(t_in, t_comp))

    def test_static_never_faster_than_resharing(self):
        """Holding rate shares for the full step can only cost time."""
        flows = lambda: [
            _copy_flow(threads=32, nbytes=9 * GB),
            Flow("comp", 272, 6.78 * GB, {"mcdram": 1.0}, 400 * GB),
        ]
        res = _resources()
        t_static = Engine(res).run(
            Plan("p", [Phase("s", flows(), static_rates=True)])
        ).elapsed
        t_share = Engine(res).run(
            Plan("p", [Phase("s", flows(), static_rates=False)])
        ).elapsed
        assert t_static >= t_share * (1 - 1e-9)

    def test_static_traffic_matches_resharing(self):
        flows = lambda: [
            _copy_flow(threads=16, nbytes=5 * GB),
            _comp_flow(threads=64, nbytes=20 * GB),
        ]
        res = _resources()
        r1 = Engine(res).run(Plan("p", [Phase("s", flows(), static_rates=True)]))
        r2 = Engine(res).run(Plan("p", [Phase("s", flows(), static_rates=False)]))
        assert r1.traffic["ddr"] == pytest.approx(r2.traffic["ddr"])
        assert r1.traffic["mcdram"] == pytest.approx(r2.traffic["mcdram"])

    def test_static_empty_phase_zero_time(self):
        p = Phase("s", [Flow("f", 1, 1.0, {"ddr": 1.0}, 0.0)], static_rates=True)
        r = Engine(_resources()).run(Plan("p", [p]))
        assert r.elapsed == 0.0

    def test_static_records_events(self):
        eng = Engine(_resources(), record_events=True)
        p = Phase("s", [_copy_flow(threads=10)], static_rates=True)
        r = eng.run(Plan("p", [p]))
        assert len(r.events) == 1


class TestFaultedEngine:
    def _plan(self, phases=4):
        plan = Plan("faulted")
        for i in range(phases):
            plan.add(Phase(f"p{i}", [_comp_flow()]))
        return plan

    def test_degrade_and_restore_resource(self):
        e = Engine(_resources())
        assert e.degrade_resource("mcdram", 0.5)
        assert e.resources["mcdram"].capacity == pytest.approx(200 * GB)
        e.restore_resource("mcdram")
        assert e.resources["mcdram"].capacity == pytest.approx(400 * GB)

    def test_degrade_unknown_resource_is_noop(self):
        e = Engine(_resources())
        assert not e.degrade_resource("disk", 0.5)

    def test_full_degradation_keeps_capacity_positive(self):
        e = Engine(_resources())
        e.degrade_resource("mcdram", 1.0)
        assert e.resources["mcdram"].capacity > 0

    def test_bandwidth_fault_slows_following_phases(self):
        from repro.faults import FaultKind, FaultPlan, FaultSpec

        clean = Engine(_resources()).run(self._plan()).elapsed
        inj = FaultPlan(
            0,
            [
                FaultSpec(
                    FaultKind.BANDWIDTH_DEGRADE,
                    "mcdram",
                    0.5,
                    at_phase=2,
                )
            ],
        ).injector()
        res = Engine(_resources(), injector=inj).run(self._plan())
        assert res.elapsed > clean
        assert any("bandwidth-degrade" in f for f in res.faults)
        # Phases before the fault are unaffected.
        assert res.phase_times[0] == pytest.approx(res.phase_times[1])
        assert res.phase_times[2] > res.phase_times[0]

    def test_degradation_restored_after_duration(self):
        from repro.faults import FaultKind, FaultPlan, FaultSpec

        inj = FaultPlan(
            0,
            [
                FaultSpec(
                    FaultKind.BANDWIDTH_DEGRADE,
                    "mcdram",
                    0.5,
                    at_phase=1,
                    duration_phases=1,
                )
            ],
        ).injector()
        res = Engine(_resources(), injector=inj).run(self._plan())
        assert inj.counters.degradations == 1
        assert inj.counters.restores == 1
        assert res.phase_times[2] == pytest.approx(res.phase_times[0])
        assert res.phase_times[1] > res.phase_times[0]

    def test_flow_stall_adds_seconds(self):
        from repro.faults import FaultKind, FaultPlan, FaultSpec

        clean = Engine(_resources()).run(self._plan()).elapsed
        inj = FaultPlan(
            0,
            [FaultSpec(FaultKind.FLOW_STALL, severity=1.5, at_phase=0)],
        ).injector()
        res = Engine(_resources(), injector=inj).run(self._plan())
        assert res.elapsed == pytest.approx(clean + 1.5)
        assert inj.counters.stall_seconds == 1.5

    def test_phase_offset_shifts_schedule(self):
        from repro.faults import FaultKind, FaultPlan, FaultSpec

        plan_src = FaultPlan(
            0,
            [
                FaultSpec(
                    FaultKind.BANDWIDTH_DEGRADE, "mcdram", 0.5, at_phase=5
                )
            ],
        )
        e = Engine(_resources(), injector=plan_src.injector())
        e.phase_offset = 4
        res = e.run(self._plan())
        # Global phase 5 is local phase 1 under the offset.
        assert res.phase_times[1] > res.phase_times[0]

    def test_replay_is_deterministic(self):
        from repro.faults import FaultPlan

        def run():
            inj = FaultPlan.degraded_mcdram(seed=9, intensity=0.6).injector()
            return Engine(_resources(), injector=inj).run(self._plan(8))

        r1, r2 = run(), run()
        assert r1.elapsed == r2.elapsed
        assert r1.phase_times == r2.phase_times
        assert r1.faults == r2.faults

    def test_phase_hook_can_stall(self):
        e = Engine(_resources())
        e.add_phase_hook(lambda eng, i, ph: 0.25 if i == 0 else None)
        res = e.run(self._plan(2))
        assert res.phase_times[0] == pytest.approx(res.phase_times[1] + 0.25)
