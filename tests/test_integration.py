"""End-to-end integration tests across subsystems.

Each scenario exercises several packages together the way a downstream
user would: heap + pipeline + trace + energy, functional + timed twins
sharing chunk geometry, CLI over every driver, and public API surface.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.core import BufferedPipeline, Chunker, FunctionKernel, StreamKernel
from repro.core.modes import UsageMode
from repro.core.planner import plan_chunk_bytes, plan_pools
from repro.memkind import MEMKIND_HBW, Heap
from repro.model.params import ModelParams
from repro.simknl.energy import EnergyModel
from repro.simknl.node import KNLNode, KNLNodeConfig, MemoryMode
from repro.simknl.trace import phase_utilizations, render_gantt, to_chrome_trace
from repro.units import GB, GiB


class TestPublicApi:
    def test_version(self):
        assert repro.__version__

    def test_top_level_exports(self):
        node = repro.KNLNode(repro.KNLNodeConfig(mode=repro.MemoryMode.FLAT))
        assert node.addressable_mcdram > 0
        assert repro.ModelParams().s_copy == pytest.approx(4.8 * GB)

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None


class TestHeapPipelineTraceEnergy:
    """One kernel through planner, heap, pipeline, trace, and energy."""

    @pytest.fixture(scope="class")
    def artifacts(self):
        node = KNLNode(KNLNodeConfig(mode=MemoryMode.FLAT))
        heap = Heap(node)
        data = int(12 * GiB)
        kernel = StreamKernel(passes=4, name="integration")
        params = ModelParams().with_data_size(data)
        # A competing long-lived allocation shrinks the heap, so the
        # chunk is sized below the planner's 1/3 maximum (the paper's
        # "other data should remain in MCDRAM" scenario).
        resident = heap.allocate(int(1 * GiB), MEMKIND_HBW)
        chunk = min(plan_chunk_bytes(node, UsageMode.FLAT, data), int(4 * GiB))
        pools = plan_pools(node, UsageMode.FLAT, params, passes=4)
        pipe = BufferedPipeline(
            node, UsageMode.FLAT, pools, Chunker(data, chunk), kernel, params
        )
        result = pipe.run(heap)
        heap.free(resident)
        return node, heap, pipe, result

    def test_heap_fully_released(self, artifacts):
        _, heap, _, _ = artifacts
        assert heap.usage()["mcdram"] == 0

    def test_utilization_consistent(self, artifacts):
        node, _, pipe, result = artifacts
        utils = phase_utilizations(
            result.plan,
            result.run,
            {"ddr": node.ddr.bandwidth, "mcdram": node.mcdram.bandwidth},
        )
        assert len(utils) == len(result.plan.phases)
        total = sum(u.duration for u in utils)
        assert total == pytest.approx(result.elapsed)
        assert all(
            0 <= v <= 1.0 for u in utils for v in u.device_utilization.values()
        )

    def test_gantt_and_chrome_trace(self, artifacts):
        _, _, _, result = artifacts
        gantt = render_gantt(result.plan, result.run)
        assert gantt.count("\n") == len(result.plan.phases)
        assert "traceEvents" in to_chrome_trace(result.plan, result.run)

    def test_energy_report(self, artifacts):
        _, _, _, result = artifacts
        rep = EnergyModel().report(result.run)
        assert rep.total_joules > 0
        assert rep.dynamic_joules["mcdram"] > rep.dynamic_joules["ddr"]


class TestFunctionalTimedTwins:
    def test_same_geometry_both_paths(self):
        """The chunk boundaries charging simulated time are the same
        boundaries slicing the real array."""
        node = KNLNode(KNLNodeConfig(mode=MemoryMode.CACHE))
        n = 4096
        arr = np.random.default_rng(0).integers(0, 99, n, dtype=np.int64)
        chunker = Chunker.from_elements(n, 1000)
        kernel = FunctionKernel(np.sort, name="sort-chunk")
        from repro.threads.pool import PoolSet

        pipe = BufferedPipeline(
            node,
            UsageMode.IMPLICIT,
            PoolSet.compute_only(node),
            chunker,
            kernel,
        )
        outputs = pipe.run_functional(arr)
        assert len(outputs) == chunker.num_chunks == 5
        for out in outputs:
            assert np.all(np.diff(out) >= 0)
        # Timed twin runs the same chunk count.
        res = pipe.run()
        assert res.num_chunks == len(outputs)

    def test_merge_bench_functional_kernel_through_pipeline(self):
        from repro.algorithms.merge_bench import merge_bench_kernel

        node = KNLNode(KNLNodeConfig(mode=MemoryMode.CACHE))
        arr = np.random.default_rng(1).integers(0, 999, 2048, dtype=np.int64)
        chunker = Chunker.from_elements(2048, 512)
        from repro.threads.pool import PoolSet

        pipe = BufferedPipeline(
            node,
            UsageMode.IMPLICIT,
            PoolSet.compute_only(node),
            chunker,
            merge_bench_kernel(3),
        )
        outs = pipe.run_functional(arr)
        for out in outs:
            assert np.all(np.diff(out) >= 0)


class TestCliAllDrivers:
    def test_every_experiment_runs_via_cli(self, capsys):
        from repro.cli import main
        from repro.experiments import ALL_EXPERIMENTS

        for name in ALL_EXPERIMENTS:
            assert main([name]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "design-space" in out


class TestDeterminism:
    def test_experiments_are_deterministic(self):
        from repro.experiments.table1 import run_table1

        a = run_table1(sizes=(2_000_000_000,), orders=("random",))
        b = run_table1(sizes=(2_000_000_000,), orders=("random",))
        assert [r["simulated_s"] for r in a.rows] == [
            r["simulated_s"] for r in b.rows
        ]

    def test_plan_rerun_identical(self):
        from repro.experiments.runner import sort_variant_run

        r1 = sort_variant_run("MLM-sort", 2_000_000_000, "random")
        r2 = sort_variant_run("MLM-sort", 2_000_000_000, "random")
        assert r1.elapsed == r2.elapsed
        assert r1.traffic == r2.traffic
