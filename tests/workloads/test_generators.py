"""Tests for workload generators and descriptors."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.workloads import ORDERS, WorkloadSpec, generate, paper_table1_specs


class TestGenerate:
    def test_random_is_not_sorted(self):
        a = generate(1000, "random", seed=0)
        assert not np.all(np.diff(a) >= 0)

    def test_reverse_is_strictly_decreasing(self):
        a = generate(100, "reverse")
        assert np.all(np.diff(a) < 0)

    def test_sorted_is_nondecreasing(self):
        a = generate(100, "sorted")
        assert np.all(np.diff(a) >= 0)

    def test_nearly_sorted_mostly_ordered(self):
        a = generate(1000, "nearly-sorted", seed=1)
        inversions = np.sum(np.diff(a) < 0)
        assert 0 < inversions < 100

    def test_few_unique_cardinality(self):
        a = generate(1000, "few-unique")
        assert len(np.unique(a)) <= 8

    def test_deterministic_by_seed(self):
        assert np.array_equal(
            generate(100, "random", seed=7), generate(100, "random", seed=7)
        )
        assert not np.array_equal(
            generate(100, "random", seed=7), generate(100, "random", seed=8)
        )

    def test_zero_elements(self):
        for order in ORDERS:
            assert len(generate(0, order)) == 0

    def test_dtype_is_int64(self):
        for order in ORDERS:
            assert generate(10, order).dtype == np.int64

    def test_unknown_order(self):
        with pytest.raises(ConfigError):
            generate(10, "zigzag")

    def test_negative_n(self):
        with pytest.raises(ConfigError):
            generate(-1)


class TestWorkloadSpec:
    def test_nbytes(self):
        assert WorkloadSpec(n=1000).nbytes == 8000

    def test_materialize_respects_order(self):
        spec = WorkloadSpec(n=50, order="reverse")
        a = spec.materialize()
        assert np.all(np.diff(a) < 0)

    def test_validation(self):
        with pytest.raises(ConfigError):
            WorkloadSpec(n=0)
        with pytest.raises(ConfigError):
            WorkloadSpec(n=1, order="bogus")
        with pytest.raises(ConfigError):
            WorkloadSpec(n=1, element_size=0)


class TestPaperSpecs:
    def test_six_workloads(self):
        specs = paper_table1_specs()
        assert len(specs) == 6
        sizes = {s.n for s in specs}
        assert sizes == {2_000_000_000, 4_000_000_000, 6_000_000_000}
        assert {s.order for s in specs} == {"random", "reverse"}


@settings(max_examples=50, deadline=None)
@given(
    n=st.integers(min_value=0, max_value=2000),
    order=st.sampled_from(ORDERS),
    seed=st.integers(min_value=0, max_value=100),
)
def test_generate_shape_and_sortability(n, order, seed):
    a = generate(n, order, seed)
    assert len(a) == n
    assert np.all(np.diff(np.sort(a)) >= 0)
