"""Tests for presortedness measures and order-factor estimation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.algorithms.costs import SortCostModel
from repro.errors import ConfigError
from repro.workloads import generate
from repro.workloads.presortedness import (
    classify_order,
    count_ascending_runs,
    count_inversions,
    count_monotone_runs,
    estimate_order_factor,
    normalized_inversions,
    rem,
    run_structure,
)


class TestRuns:
    def test_sorted_one_run(self):
        assert count_ascending_runs(np.arange(100)) == 1
        assert count_monotone_runs(np.arange(100)) == 1

    def test_reverse_runs(self):
        rev = np.arange(100)[::-1].copy()
        assert count_ascending_runs(rev) == 100
        assert count_monotone_runs(rev) == 1  # one descending run

    def test_alternating(self):
        a = np.array([1, 5, 2, 6, 3, 7])
        assert count_ascending_runs(a) == 3

    def test_empty_and_single(self):
        assert count_ascending_runs(np.array([])) == 0
        assert count_monotone_runs(np.array([7])) == 1

    def test_all_equal_one_run(self):
        a = np.full(50, 3)
        assert count_ascending_runs(a) == 1
        assert count_monotone_runs(a) == 1

    def test_organ_pipe_two_monotone_runs(self):
        a = np.concatenate([np.arange(50), np.arange(50)[::-1]])
        assert count_monotone_runs(a) == 2

    def test_rejects_2d(self):
        with pytest.raises(ConfigError):
            count_ascending_runs(np.zeros((2, 2)))


class TestInversions:
    def test_sorted_zero(self):
        assert count_inversions(np.arange(100)) == 0

    def test_reverse_maximum(self):
        n = 50
        rev = np.arange(n)[::-1].copy()
        assert count_inversions(rev) == n * (n - 1) // 2

    def test_single_swap(self):
        a = np.array([0, 2, 1, 3])
        assert count_inversions(a) == 1

    def test_duplicates_not_inversions(self):
        assert count_inversions(np.array([1, 1, 1])) == 0

    def test_brute_force_agreement(self):
        rng = np.random.default_rng(0)
        a = rng.integers(0, 20, 60)
        brute = sum(
            1
            for i in range(len(a))
            for j in range(i + 1, len(a))
            if a[i] > a[j]
        )
        assert count_inversions(a) == brute

    def test_normalized_extremes(self):
        assert normalized_inversions(np.arange(50)) == 0.0
        assert normalized_inversions(np.arange(50)[::-1].copy()) == 1.0


class TestRem:
    def test_sorted_zero(self):
        assert rem(np.arange(100)) == 0

    def test_reverse_n_minus_one(self):
        assert rem(np.arange(50)[::-1].copy()) == 49

    def test_one_outlier(self):
        a = np.array([1, 2, 3, 0, 4, 5])
        assert rem(a) == 1

    def test_nondecreasing_duplicates_kept(self):
        assert rem(np.array([1, 1, 2, 2])) == 0


class TestRunStructure:
    def test_monotone_inputs_zero(self):
        assert run_structure(np.arange(1000)) == 0.0
        assert run_structure(np.arange(1000)[::-1].copy()) == 0.0

    def test_random_near_one(self):
        a = generate(5000, "random", seed=3)
        assert run_structure(a) > 0.7

    def test_nearly_sorted_low(self):
        a = generate(5000, "nearly-sorted", seed=4)
        assert run_structure(a) < 0.2


class TestOrderFactor:
    def test_extremes_match_calibration(self):
        cost = SortCostModel()
        sorted_f = estimate_order_factor(np.arange(5000), cost)
        reverse_f = estimate_order_factor(
            np.arange(5000)[::-1].copy(), cost
        )
        random_f = estimate_order_factor(generate(5000, "random"), cost)
        assert sorted_f == pytest.approx(cost.reverse_factor_mlm)
        assert reverse_f == pytest.approx(cost.reverse_factor_mlm)
        assert random_f > 0.85

    def test_gnu_floor_differs(self):
        cost = SortCostModel()
        rev = np.arange(1000)[::-1].copy()
        assert estimate_order_factor(rev, cost, gnu=True) == pytest.approx(
            cost.reverse_factor_gnu
        )

    def test_monotone_in_structure(self):
        cost = SortCostModel()
        nearly = generate(5000, "nearly-sorted", seed=1)
        random = generate(5000, "random", seed=1)
        assert estimate_order_factor(nearly, cost) < estimate_order_factor(
            random, cost
        )


class TestClassify:
    @pytest.mark.parametrize(
        "order,expected",
        [
            ("sorted", "sorted"),
            ("reverse", "reverse"),
            ("random", "random"),
            ("nearly-sorted", "nearly-sorted"),
        ],
    )
    def test_generator_orders_roundtrip(self, order, expected):
        a = generate(3000, order, seed=5)
        assert classify_order(a) == expected

    def test_tiny_inputs_sorted(self):
        assert classify_order(np.array([1])) == "sorted"
        assert classify_order(np.array([], dtype=np.int64)) == "sorted"


@settings(max_examples=60, deadline=None)
@given(
    arr=arrays(
        dtype=np.int64,
        shape=st.integers(min_value=2, max_value=150),
        elements=st.integers(min_value=-100, max_value=100),
    )
)
def test_inversion_invariants(arr):
    inv = count_inversions(arr)
    n = len(arr)
    assert 0 <= inv <= n * (n - 1) // 2
    assert count_inversions(np.sort(arr)) == 0


@settings(max_examples=60, deadline=None)
@given(
    arr=arrays(
        dtype=np.int64,
        shape=st.integers(min_value=0, max_value=150),
        elements=st.integers(min_value=-100, max_value=100),
    )
)
def test_runs_and_rem_bounds(arr):
    n = len(arr)
    assert 0 <= count_ascending_runs(arr) <= max(n, 0)
    assert count_monotone_runs(arr) <= count_ascending_runs(arr) or n < 2
    assert 0 <= rem(arr) <= max(0, n - 1)


@settings(max_examples=40, deadline=None)
@given(
    arr=arrays(
        dtype=np.int64,
        shape=st.integers(min_value=2, max_value=200),
        elements=st.integers(min_value=-50, max_value=50),
    )
)
def test_order_factor_in_valid_range(arr):
    cost = SortCostModel()
    f = estimate_order_factor(arr, cost)
    assert cost.reverse_factor_mlm <= f <= 1.0
