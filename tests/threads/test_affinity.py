"""Tests for thread-to-core affinity policies."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.simknl.topology import KNLTopology
from repro.threads.affinity import AffinityPolicy, assign_threads, cores_used


@pytest.fixture
def topo():
    return KNLTopology()


class TestCompact:
    def test_fills_smt_first(self, topo):
        slots = assign_threads(topo, 8, AffinityPolicy.COMPACT)
        assert slots == list(range(8))
        assert cores_used(topo, slots) == {0, 1}

    def test_full_machine(self, topo):
        slots = assign_threads(topo, 272, AffinityPolicy.COMPACT)
        assert len(set(slots)) == 272


class TestScatter:
    def test_one_thread_per_core_first(self, topo):
        slots = assign_threads(topo, 68, AffinityPolicy.SCATTER)
        assert len(cores_used(topo, slots)) == 68

    def test_wraps_to_smt_siblings(self, topo):
        slots = assign_threads(topo, 70, AffinityPolicy.SCATTER)
        assert len(cores_used(topo, slots)) == 68
        # Threads 68, 69 are second SMT slots of cores 0 and 1.
        assert slots[68] == 1
        assert slots[69] == 5

    def test_small_count_distinct_cores(self, topo):
        slots = assign_threads(topo, 16, AffinityPolicy.SCATTER)
        assert len(cores_used(topo, slots)) == 16

    def test_full_machine_unique(self, topo):
        slots = assign_threads(topo, 272, AffinityPolicy.SCATTER)
        assert len(set(slots)) == 272


class TestValidation:
    def test_zero_threads(self, topo):
        assert assign_threads(topo, 0) == []

    def test_negative_rejected(self, topo):
        with pytest.raises(ConfigError):
            assign_threads(topo, -1)

    def test_too_many_rejected(self, topo):
        with pytest.raises(ConfigError):
            assign_threads(topo, 273)


@settings(max_examples=60, deadline=None)
@given(
    count=st.integers(min_value=0, max_value=272),
    policy=st.sampled_from(list(AffinityPolicy)),
)
def test_assignments_are_unique_and_valid(count, policy):
    topo = KNLTopology()
    slots = assign_threads(topo, count, policy)
    assert len(slots) == count
    assert len(set(slots)) == count
    for s in slots:
        assert 0 <= s < topo.num_threads


@settings(max_examples=60, deadline=None)
@given(count=st.integers(min_value=1, max_value=272))
def test_scatter_never_uses_fewer_cores_than_compact(count):
    topo = KNLTopology()
    sc = cores_used(topo, assign_threads(topo, count, AffinityPolicy.SCATTER))
    co = cores_used(topo, assign_threads(topo, count, AffinityPolicy.COMPACT))
    assert len(sc) >= len(co)
