"""Tests for the OpenMP-like loop scheduling model."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.threads.omp import ScheduleKind, simulate_loop


class TestStatic:
    def test_uniform_costs_perfectly_balanced(self):
        s = simulate_loop(np.ones(100), threads=4)
        assert s.makespan == pytest.approx(25.0)
        assert s.efficiency == pytest.approx(1.0)

    def test_uneven_division(self):
        s = simulate_loop(np.ones(10), threads=4)
        # blocks of 3,3,2,2
        assert s.makespan == pytest.approx(3.0)

    def test_skewed_costs_hurt_static(self):
        costs = np.zeros(100)
        costs[:25] = 1.0  # all work in the first thread's block
        s = simulate_loop(costs, threads=4)
        assert s.makespan == pytest.approx(25.0)
        assert s.efficiency == pytest.approx(0.25)

    def test_static_chunked_round_robin(self):
        costs = np.zeros(100)
        costs[:25] = 1.0
        s = simulate_loop(costs, threads=4, kind=ScheduleKind.STATIC, chunk=1)
        # Round-robin spreads the hot region across threads.
        assert s.makespan == pytest.approx(7.0)

    def test_more_threads_than_iterations(self):
        s = simulate_loop(np.ones(2), threads=8)
        assert s.makespan == pytest.approx(1.0)
        assert s.total_work == pytest.approx(2.0)


class TestDynamic:
    def test_dynamic_balances_skew(self):
        costs = np.zeros(100)
        costs[:25] = 1.0
        s = simulate_loop(costs, threads=4, kind=ScheduleKind.DYNAMIC)
        assert s.makespan == pytest.approx(7.0)

    def test_dynamic_chunked(self):
        s = simulate_loop(np.ones(100), threads=4, kind=ScheduleKind.DYNAMIC, chunk=10)
        assert s.makespan == pytest.approx(30.0)

    def test_single_thread_is_serial(self):
        costs = np.arange(10, dtype=float)
        s = simulate_loop(costs, threads=1, kind=ScheduleKind.DYNAMIC)
        assert s.makespan == pytest.approx(costs.sum())


class TestGuided:
    def test_guided_completes_all_work(self):
        costs = np.ones(100)
        s = simulate_loop(costs, threads=4, kind=ScheduleKind.GUIDED)
        assert s.total_work == pytest.approx(100.0)
        assert s.makespan >= 25.0

    def test_guided_decreasing_chunks_balance(self):
        rng = np.random.default_rng(0)
        costs = rng.random(500)
        s = simulate_loop(costs, threads=8, kind=ScheduleKind.GUIDED)
        assert s.efficiency > 0.8


class TestValidation:
    def test_empty_loop(self):
        s = simulate_loop([], threads=4)
        assert s.makespan == 0.0
        assert s.efficiency == 1.0

    def test_negative_cost_rejected(self):
        with pytest.raises(ConfigError):
            simulate_loop([-1.0], threads=1)

    def test_zero_threads_rejected(self):
        with pytest.raises(ConfigError):
            simulate_loop([1.0], threads=0)

    def test_bad_chunk_rejected(self):
        with pytest.raises(ConfigError):
            simulate_loop([1.0], threads=1, chunk=0)

    def test_2d_costs_rejected(self):
        with pytest.raises(ConfigError):
            simulate_loop(np.ones((2, 2)), threads=1)


@settings(max_examples=100, deadline=None)
@given(
    costs=st.lists(st.floats(min_value=0.0, max_value=100.0), max_size=100),
    threads=st.integers(min_value=1, max_value=16),
    kind=st.sampled_from(list(ScheduleKind)),
)
def test_makespan_bounds(costs, threads, kind):
    """total/p <= makespan <= total, and all work is executed."""
    s = simulate_loop(costs, threads=threads, kind=kind)
    total = sum(costs)
    assert s.total_work == pytest.approx(total, rel=1e-9, abs=1e-9)
    assert s.makespan <= total * (1 + 1e-9) + 1e-9
    assert s.makespan >= total / threads * (1 - 1e-9)


@settings(max_examples=60, deadline=None)
@given(
    costs=st.lists(
        st.floats(min_value=0.01, max_value=10.0), min_size=1, max_size=80
    ),
    threads=st.integers(min_value=1, max_value=8),
)
def test_dynamic_never_worse_than_serial(costs, threads):
    s = simulate_loop(costs, threads=threads, kind=ScheduleKind.DYNAMIC)
    s1 = simulate_loop(costs, threads=1, kind=ScheduleKind.DYNAMIC)
    assert s.makespan <= s1.makespan * (1 + 1e-9)
