"""Tests for thread pools and the three-pool split."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.simknl.node import KNLNode
from repro.threads.pool import PoolSet, ThreadPool
from repro.units import GB


@pytest.fixture
def node():
    return KNLNode()


class TestThreadPool:
    def test_size(self):
        assert ThreadPool("compute", (0, 1, 2)).size == 3

    def test_flow_builder(self):
        p = ThreadPool("copy-in", tuple(range(8)))
        f = p.flow(4.8 * GB, {"ddr": 1.0, "mcdram": 1.0}, 14.9 * GB)
        assert f.threads == 8
        assert f.name == "copy-in"
        assert f.rate_cap == pytest.approx(8 * 4.8 * GB)

    def test_flow_custom_name(self):
        p = ThreadPool("copy-in", (0,))
        assert p.flow(1.0, {"ddr": 1.0}, 1.0, name="x").name == "x"


class TestPoolSetSplit:
    def test_basic_split(self, node):
        ps = PoolSet.split(node, compute=240, copy_in=16)
        assert ps.compute.size == 240
        assert ps.copy_in.size == 16
        assert ps.copy_out.size == 16  # symmetric default
        assert ps.total == 272
        assert ps.copy_threads == 32

    def test_asymmetric_split(self, node):
        ps = PoolSet.split(node, compute=100, copy_in=8, copy_out=4)
        assert ps.copy_out.size == 4
        assert ps.copy_threads == 12

    def test_pools_disjoint(self, node):
        ps = PoolSet.split(node, compute=100, copy_in=50, copy_out=50)
        all_threads = (
            set(ps.compute.threads)
            | set(ps.copy_in.threads)
            | set(ps.copy_out.threads)
        )
        assert len(all_threads) == 200

    def test_overflow_rejected(self, node):
        with pytest.raises(ConfigError):
            PoolSet.split(node, compute=260, copy_in=16)

    def test_negative_rejected(self, node):
        with pytest.raises(ConfigError):
            PoolSet.split(node, compute=-1, copy_in=1)

    def test_compute_only(self, node):
        ps = PoolSet.compute_only(node)
        assert ps.compute.size == 272
        assert ps.copy_threads == 0

    def test_compute_only_partial(self, node):
        ps = PoolSet.compute_only(node, threads=64)
        assert ps.compute.size == 64

    def test_overlapping_pools_rejected(self):
        with pytest.raises(ConfigError):
            PoolSet(
                compute=ThreadPool("compute", (0, 1)),
                copy_in=ThreadPool("copy-in", (1, 2)),
                copy_out=ThreadPool("copy-out", ()),
            )


class TestWorkerLossResplit:
    def _pools(self, node):
        return PoolSet.split(node, compute=236, copy_in=10)

    def test_without_threads_strips_only(self, node):
        pools = self._pools(node)
        victims = pools.copy_in.threads[:4]
        out = pools.without_threads(victims)
        assert out.copy_in.size == 6
        assert out.compute.size == 236  # untouched, no re-split
        assert set(victims).isdisjoint(
            out.compute.threads + out.copy_in.threads + out.copy_out.threads
        )

    def test_without_threads_all_lost_rejected(self, node):
        pools = PoolSet.split(node, compute=2, copy_in=0)
        with pytest.raises(ConfigError):
            pools.without_threads(pools.compute.threads)

    def test_resplit_preserves_role_proportions(self, node):
        from repro.errors import DegradedModeWarning

        pools = self._pools(node)
        victims = pools.compute.threads[:64]
        with pytest.warns(DegradedModeWarning):
            out = pools.resplit_after_loss(victims)
        assert out.total == pools.total - 64
        # 10/256 copy share, re-applied to 192 survivors: ~7-8 each.
        assert out.copy_in.size == round(10 * out.total / pools.total)
        assert out.copy_out.size == round(10 * out.total / pools.total)
        assert out.compute.size >= 1
        # Survivors only, still disjoint (PoolSet validates in init).
        assert set(victims).isdisjoint(
            out.compute.threads + out.copy_in.threads + out.copy_out.threads
        )

    def test_resplit_keeps_compute_alive(self, node):
        from repro.errors import DegradedModeWarning

        pools = PoolSet.split(node, compute=1, copy_in=4)
        # Lose most threads: compute must keep its guaranteed thread.
        victims = (pools.copy_in.threads + pools.copy_out.threads)[:6]
        with pytest.warns(DegradedModeWarning):
            out = pools.resplit_after_loss(victims)
        assert out.compute.size >= 1
        assert out.total == 3

    def test_resplit_noop_when_no_owned_threads_lost(self, node):
        pools = self._pools(node)
        assert pools.resplit_after_loss([100000]) is pools

    def test_resplit_all_lost_rejected(self, node):
        pools = PoolSet.split(node, compute=4, copy_in=2)
        all_threads = (
            pools.compute.threads
            + pools.copy_in.threads
            + pools.copy_out.threads
        )
        with pytest.raises(ConfigError):
            pools.resplit_after_loss(all_threads)
