"""Tests for the benchmark regression gate (tools/bench_compare.py)."""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "bench_compare",
    Path(__file__).resolve().parents[1] / "tools" / "bench_compare.py",
)
bench_compare = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(bench_compare)


def _payload(means: dict[str, float]) -> dict:
    return {
        "benchmarks": [
            {"fullname": name, "stats": {"mean": mean}}
            for name, mean in means.items()
        ]
    }


def _write(tmp_path: Path, name: str, means: dict[str, float]) -> Path:
    path = tmp_path / name
    path.write_text(json.dumps(_payload(means)))
    return path


class TestCompare:
    def test_within_threshold_passes(self):
        lines, regs = bench_compare.compare(
            {"a": 1.0}, {"a": 1.25}, threshold=0.30
        )
        assert regs == []
        assert any("ok" in line for line in lines)

    def test_regression_flagged(self):
        _, regs = bench_compare.compare(
            {"a": 1.0, "b": 1.0}, {"a": 1.5, "b": 0.9}, threshold=0.30
        )
        assert len(regs) == 1
        assert regs[0].startswith("a:")

    def test_improvement_labelled(self):
        lines, regs = bench_compare.compare(
            {"a": 1.0}, {"a": 0.1}, threshold=0.30
        )
        assert regs == []
        assert any("improved" in line for line in lines)

    def test_new_and_missing_do_not_fail(self):
        lines, regs = bench_compare.compare(
            {"old": 1.0}, {"new": 1.0}, threshold=0.30
        )
        assert regs == []
        assert any("NEW" in line for line in lines)
        assert any("MISSING" in line for line in lines)


class TestMain:
    def test_identical_files_pass(self, tmp_path, capsys):
        base = _write(tmp_path, "base.json", {"a": 1.0, "b": 2.0})
        assert bench_compare.main([str(base), str(base)]) == 0
        assert "OK" in capsys.readouterr().out

    def test_regressed_file_fails(self, tmp_path, capsys):
        base = _write(tmp_path, "base.json", {"a": 1.0})
        cur = _write(tmp_path, "cur.json", {"a": 2.0})
        assert bench_compare.main([str(base), str(cur)]) == 1
        assert "FAIL" in capsys.readouterr().err

    def test_custom_threshold(self, tmp_path):
        base = _write(tmp_path, "base.json", {"a": 1.0})
        cur = _write(tmp_path, "cur.json", {"a": 1.5})
        assert bench_compare.main([str(base), str(cur)]) == 1
        assert (
            bench_compare.main(
                [str(base), str(cur), "--threshold", "0.60"]
            )
            == 0
        )

    def test_empty_payload_rejected(self, tmp_path):
        path = tmp_path / "empty.json"
        path.write_text(json.dumps({"benchmarks": []}))
        with pytest.raises(SystemExit):
            bench_compare.load_means(path)
