"""Tests for the deterministic fault-injection layer."""

from __future__ import annotations

import pytest

from repro.errors import (
    ConfigError,
    PermanentFaultError,
    TransientFaultError,
)
from repro.faults import (
    FaultCounters,
    FaultKind,
    FaultPlan,
    FaultSpec,
    PHASE_KINDS,
)


class TestFaultSpec:
    def test_schedule_driven_spec(self):
        s = FaultSpec(FaultKind.BANDWIDTH_DEGRADE, "mcdram", 0.5, at_phase=3)
        assert s.at_phase == 3
        assert s.probability == 0.0

    def test_needs_a_trigger(self):
        with pytest.raises(ConfigError):
            FaultSpec(FaultKind.ALLOC_FAIL, "mcdram")

    def test_probability_bounds(self):
        with pytest.raises(ConfigError):
            FaultSpec(FaultKind.ALLOC_FAIL, probability=1.5)

    def test_fractional_kinds_cap_severity(self):
        with pytest.raises(ConfigError):
            FaultSpec(
                FaultKind.BANDWIDTH_DEGRADE, severity=2.0, probability=0.5
            )
        # Stall severity is in seconds, so > 1 is fine.
        FaultSpec(FaultKind.FLOW_STALL, severity=3.5, probability=0.5)

    def test_negative_phase_rejected(self):
        with pytest.raises(ConfigError):
            FaultSpec(FaultKind.FLOW_STALL, probability=0.5, at_phase=-1)

    def test_duration_must_be_positive(self):
        with pytest.raises(ConfigError):
            FaultSpec(
                FaultKind.BANDWIDTH_DEGRADE,
                at_phase=0,
                duration_phases=0,
            )


class TestFaultPlan:
    def test_add_chains(self):
        plan = FaultPlan(seed=1).add(
            FaultSpec(FaultKind.ALLOC_FAIL, "mcdram", probability=0.5)
        )
        assert len(plan.specs) == 1

    def test_scaled_clamps(self):
        plan = FaultPlan(
            0, [FaultSpec(FaultKind.ALLOC_FAIL, probability=0.6)]
        ).scaled(3.0)
        assert plan.specs[0].probability == 1.0

    def test_degraded_mcdram_preset(self):
        plan = FaultPlan.degraded_mcdram(seed=7, intensity=0.5)
        kinds = {s.kind for s in plan.specs}
        assert FaultKind.BANDWIDTH_DEGRADE in kinds
        assert FaultKind.ALLOC_FAIL in kinds

    def test_zero_intensity_is_empty(self):
        assert FaultPlan.degraded_mcdram(intensity=0.0).specs == []

    def test_bad_intensity(self):
        with pytest.raises(ConfigError):
            FaultPlan.degraded_mcdram(intensity=1.5)


class TestInjectorDeterminism:
    def _alloc_trace(self, seed: int, draws: int = 200) -> list[bool]:
        inj = FaultPlan(
            seed,
            [FaultSpec(FaultKind.ALLOC_FAIL, "mcdram", probability=0.3)],
        ).injector()
        return [inj.should_fail_alloc("mcdram") for _ in range(draws)]

    def test_same_seed_same_schedule(self):
        assert self._alloc_trace(42) == self._alloc_trace(42)

    def test_different_seed_different_schedule(self):
        assert self._alloc_trace(1) != self._alloc_trace(2)

    def test_streams_are_isolated(self):
        """Draws on one spec's hook must not perturb another's stream."""
        specs = [
            FaultSpec(FaultKind.ALLOC_FAIL, "mcdram", probability=0.3),
            FaultSpec(FaultKind.SPILL_IO_FAIL, probability=0.3),
        ]
        a = FaultPlan(9, specs).injector()
        baseline = [a.should_fail_alloc("mcdram") for _ in range(100)]
        b = FaultPlan(9, specs).injector()
        interleaved = []
        for _ in range(100):
            interleaved.append(b.should_fail_alloc("mcdram"))
            try:
                b.check_spill_io("write")
            except TransientFaultError:
                pass
        assert interleaved == baseline

    def test_phase_events_replay(self):
        plan = FaultPlan.degraded_mcdram(seed=5, intensity=0.5)
        e1 = [plan.injector().phase_events(i) for i in range(10)]
        e2 = [plan.injector().phase_events(i) for i in range(10)]
        assert e1 == e2


class TestInjectorHooks:
    def test_scheduled_phase_event_fires_once(self):
        inj = FaultPlan(
            0,
            [
                FaultSpec(
                    FaultKind.BANDWIDTH_DEGRADE,
                    "mcdram",
                    0.5,
                    at_phase=2,
                    duration_phases=3,
                )
            ],
        ).injector()
        fired = [inj.phase_events(i) for i in range(5)]
        assert [len(f) for f in fired] == [0, 0, 1, 0, 0]
        ev = fired[2][0]
        assert ev.target == "mcdram"
        assert ev.duration_phases == 3
        assert "mcdram" in ev.describe()

    def test_phase_kinds_filter(self):
        inj = FaultPlan(
            0, [FaultSpec(FaultKind.ALLOC_FAIL, "mcdram", at_phase=0)]
        ).injector()
        # ALLOC_FAIL is not a phase kind: the engine never consumes it.
        assert inj.phase_events(0, kinds=PHASE_KINDS) == []

    def test_alloc_fault_counts(self):
        inj = FaultPlan(
            0, [FaultSpec(FaultKind.ALLOC_FAIL, "mcdram", probability=1.0)]
        ).injector()
        assert inj.should_fail_alloc("mcdram")
        assert not inj.should_fail_alloc("ddr")
        assert inj.counters.alloc_faults == 1

    def test_spill_io_transient_and_permanent(self):
        inj = FaultPlan(
            0, [FaultSpec(FaultKind.SPILL_IO_FAIL, probability=1.0)]
        ).injector()
        with pytest.raises(TransientFaultError):
            inj.check_spill_io("write")
        perm = FaultPlan(
            0,
            [
                FaultSpec(
                    FaultKind.SPILL_IO_FAIL, probability=1.0, permanent=True
                )
            ],
        ).injector()
        with pytest.raises(PermanentFaultError):
            perm.check_spill_io("read")

    def test_chunk_fault_targets_one_chunk(self):
        inj = FaultPlan(
            0, [FaultSpec(FaultKind.CHUNK_FAIL, at_phase=1)]
        ).injector()
        inj.check_chunk(0)
        with pytest.raises(TransientFaultError):
            inj.check_chunk(1)
        assert inj.counters.chunk_faults == 1

    def test_lost_workers_deterministic(self):
        spec = FaultSpec(FaultKind.WORKER_LOSS, severity=0.25, probability=1.0)
        threads = tuple(range(16))
        lost1 = FaultPlan(3, [spec]).injector().lost_workers(threads)
        lost2 = FaultPlan(3, [spec]).injector().lost_workers(threads)
        assert lost1 == lost2
        assert len(lost1) == 4

    def test_counters_ledger(self):
        c = FaultCounters()
        c.alloc_fallbacks += 2
        c.chunk_retries += 1
        c.mode_degradations += 1
        assert c.recovery_events == 4
        d = c.as_dict()
        assert d["alloc_fallbacks"] == 2
        assert "stall_seconds" in d
