"""Tests for the copy-thread optimizer (Table 3 / Fig. 8a)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.model.optimizer import optimal_copy_threads, sweep_copy_threads
from repro.model.params import ModelParams

P = ModelParams()


class TestSweep:
    def test_default_sweep_covers_feasible_range(self):
        curve = sweep_copy_threads(P, total_threads=256, passes=1)
        p_ins = [m.p_in for m in curve]
        assert p_ins[0] == 1
        assert p_ins[-1] == 127
        assert all(m.p_comp >= 1 for m in curve)

    def test_budget_respected(self):
        for m in sweep_copy_threads(P, total_threads=64, passes=4):
            assert m.p_comp + m.p_in + m.p_out == 64

    def test_explicit_candidates(self):
        curve = sweep_copy_threads(P, passes=1, p_in_values=[1, 2, 4])
        assert [m.p_in for m in curve] == [1, 2, 4]

    def test_infeasible_candidates_skipped(self):
        curve = sweep_copy_threads(
            P, total_threads=16, passes=1, p_in_values=[1, 7, 8]
        )
        assert [m.p_in for m in curve] == [1, 7]

    def test_too_few_threads_rejected(self):
        with pytest.raises(ConfigError):
            sweep_copy_threads(P, total_threads=2)

    def test_all_infeasible_rejected(self):
        with pytest.raises(ConfigError):
            sweep_copy_threads(P, total_threads=8, p_in_values=[4])


class TestOptimum:
    def test_table3_model_column_trend(self):
        """Reproduce Table 3's model column; exact at 5 of 7 rows and
        within the paper's own 'near-optimal' tolerance elsewhere."""
        got = {
            r: optimal_copy_threads(P, 256, passes=r).p_in
            for r in (1, 2, 4, 8, 16, 32, 64)
        }
        paper = {1: 10, 2: 10, 4: 10, 8: 8, 16: 3, 32: 2, 64: 1}
        assert got[1] == paper[1]
        assert got[2] == paper[2]
        assert got[16] == paper[16]
        assert got[32] == paper[32]
        assert got[64] == paper[64]
        # Near-misses stay within a few threads and keep the trend.
        assert abs(got[4] - paper[4]) <= 2
        assert abs(got[8] - paper[8]) <= 3

    def test_optimal_decreasing_in_repeats(self):
        """More compute per byte -> fewer copy threads (Section 5)."""
        values = [
            optimal_copy_threads(P, 256, passes=r).p_in
            for r in (1, 2, 4, 8, 16, 32, 64)
        ]
        for a, b in zip(values, values[1:]):
            assert b <= a

    def test_copy_bound_optimum_saturates_ddr(self):
        """For tiny compute the optimum just saturates DDR (p=10)."""
        res = optimal_copy_threads(P, 256, passes=1)
        assert res.p_in == 10
        assert res.best.copy_bound

    def test_power_of_two_candidates(self):
        res = optimal_copy_threads(
            P, 256, passes=8, p_in_values=[1, 2, 4, 8, 16, 32]
        )
        assert res.p_in in (4, 8)

    def test_result_accessors(self):
        res = optimal_copy_threads(P, 256, passes=4)
        assert res.t_total == res.best.t_total
        assert res.p_in == res.best.p_in
        assert len(res.curve) > 50


@settings(max_examples=40, deadline=None)
@given(
    passes=st.floats(min_value=0.5, max_value=128),
    budget=st.integers(min_value=8, max_value=272),
)
def test_optimum_is_curve_minimum(passes, budget):
    res = optimal_copy_threads(P, budget, passes=passes)
    t_min = min(m.t_total for m in res.curve)
    assert res.t_total <= t_min * (1 + 1e-9)
