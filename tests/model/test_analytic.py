"""Tests for Equations 1-5 (Section 3.2)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.model.analytic import (
    compute_rate_coefficient,
    compute_time,
    copy_rate_coefficient,
    copy_time,
    predict,
    total_time,
)
from repro.model.params import ModelParams
from repro.units import GB

P = ModelParams()  # the paper's Table 2 values


class TestParams:
    def test_table2_defaults(self):
        assert P.b_copy == pytest.approx(14.9 * GB)
        assert P.ddr_max == pytest.approx(90 * GB)
        assert P.mcdram_max == pytest.approx(400 * GB)
        assert P.s_copy == pytest.approx(4.8 * GB)
        assert P.s_comp == pytest.approx(6.78 * GB)

    def test_rejects_non_positive(self):
        with pytest.raises(ConfigError):
            ModelParams(b_copy=0)
        with pytest.raises(ConfigError):
            ModelParams(s_comp=-1)

    def test_with_data_size(self):
        q = P.with_data_size(1 * GB)
        assert q.b_copy == 1 * GB
        assert q.ddr_max == P.ddr_max

    def test_ddr_saturating_copy_threads(self):
        # 90 / 4.8 = 18.75 -> 19 threads total, i.e. p_in = 10 each way.
        assert P.ddr_saturating_copy_threads() == 19


class TestEq3CopyRate:
    def test_unsaturated_returns_s_copy(self):
        assert copy_rate_coefficient(P, 4, 4) == pytest.approx(4.8 * GB)

    def test_saturated_returns_share(self):
        c = copy_rate_coefficient(P, 16, 16)
        assert c == pytest.approx(90 * GB / 32)

    def test_boundary(self):
        # 18 threads * 4.8 = 86.4 < 90: unsaturated.
        assert copy_rate_coefficient(P, 9, 9) == pytest.approx(4.8 * GB)
        # 20 threads * 4.8 = 96 > 90: saturated.
        assert copy_rate_coefficient(P, 10, 10) == pytest.approx(4.5 * GB)

    def test_zero_threads(self):
        assert copy_rate_coefficient(P, 0, 0) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ConfigError):
            copy_rate_coefficient(P, -1, 0)


class TestEq2CopyTime:
    def test_unsaturated_formula(self):
        # T = 2B / (p * S_copy)
        t = copy_time(P, 5, 5)
        assert t == pytest.approx(2 * 14.9 / (10 * 4.8))

    def test_saturated_formula(self):
        t = copy_time(P, 16, 16)
        assert t == pytest.approx(2 * 14.9 / 90)

    def test_no_copy_threads_infinite(self):
        assert math.isinf(copy_time(P, 0, 0))

    def test_monotone_then_flat(self):
        times = [copy_time(P, p, p) for p in range(1, 40)]
        for a, b in zip(times, times[1:]):
            assert b <= a * (1 + 1e-12)
        assert times[-1] == pytest.approx(2 * 14.9 / 90)


class TestEq5ComputeRate:
    def test_unsaturated_returns_s_comp(self):
        # 10 * 6.78 + 10 * 4.8 = 115.8 < 400.
        assert compute_rate_coefficient(P, 10, 5, 5) == pytest.approx(6.78 * GB)

    def test_saturated_shares_leftover(self):
        # 246 compute + 10 copy threads saturate MCDRAM; copy pools
        # take their DDR-capped 90, compute splits 310.
        c = compute_rate_coefficient(P, 246, 5, 5)
        expected = (400 * GB - 10 * 4.8 * GB) / 246
        assert c == pytest.approx(expected)

    def test_saturated_with_ddr_capped_copy(self):
        c = compute_rate_coefficient(P, 236, 10, 10)
        expected = (400 * GB - 90 * GB) / 236
        assert c == pytest.approx(expected)

    def test_zero_compute_threads(self):
        assert compute_rate_coefficient(P, 0, 1, 1) == 0.0

    def test_never_exceeds_s_comp(self):
        for p_comp in (1, 10, 100, 270):
            for p in (0, 1, 10, 30):
                c = compute_rate_coefficient(P, p_comp, p, p)
                assert c <= P.s_comp * (1 + 1e-12)


class TestEq4ComputeTime:
    def test_formula(self):
        t = compute_time(P, 10, 5, 5, passes=2.0)
        assert t == pytest.approx(2 * 14.9 * 2 / (10 * 6.78))

    def test_zero_passes_zero_time(self):
        assert compute_time(P, 10, 5, 5, passes=0.0) == 0.0

    def test_no_compute_threads_infinite(self):
        assert math.isinf(compute_time(P, 0, 5, 5))

    def test_negative_passes_rejected(self):
        with pytest.raises(ConfigError):
            compute_time(P, 1, 1, 1, passes=-1)


class TestEq1Total:
    def test_is_max(self):
        t = total_time(P, 246, 5, 5, passes=8)
        assert t == pytest.approx(
            max(copy_time(P, 5, 5), compute_time(P, 246, 5, 5, 8))
        )

    def test_predict_consistency(self):
        m = predict(P, 246, 5, passes=8)
        assert m.p_out == 5  # symmetric default
        assert m.t_total == pytest.approx(max(m.t_copy, m.t_comp))
        assert m.copy_bound == (m.t_copy >= m.t_comp)

    def test_high_repeats_compute_bound(self):
        assert not predict(P, 246, 5, passes=64).copy_bound

    def test_low_repeats_copy_bound(self):
        assert predict(P, 246, 5, passes=1).copy_bound


@settings(max_examples=150, deadline=None)
@given(
    p_in=st.integers(min_value=1, max_value=64),
    p_comp=st.integers(min_value=1, max_value=272),
    passes=st.floats(min_value=0.1, max_value=128),
)
def test_times_positive_and_total_is_max(p_in, p_comp, passes):
    m = predict(P, p_comp, p_in, passes=passes)
    assert m.t_copy > 0
    assert m.t_comp > 0 or passes == 0
    assert m.t_total == pytest.approx(max(m.t_copy, m.t_comp))


@settings(max_examples=100, deadline=None)
@given(passes=st.floats(min_value=0.1, max_value=64))
def test_compute_time_monotone_in_passes(passes):
    t1 = compute_time(P, 100, 5, 5, passes)
    t2 = compute_time(P, 100, 5, 5, passes * 2)
    assert t2 == pytest.approx(2 * t1)


@settings(max_examples=100, deadline=None)
@given(
    scale=st.floats(min_value=0.1, max_value=10.0),
    p_in=st.integers(min_value=1, max_value=32),
)
def test_copy_time_linear_in_data_size(scale, p_in):
    q = P.with_data_size(P.b_copy * scale)
    assert copy_time(q, p_in, p_in) == pytest.approx(
        copy_time(P, p_in, p_in) * scale
    )
