"""Tests for the Snir bandwidth-boundedness test and roofline."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.model.roofline import (
    is_bandwidth_bound,
    machine_balance,
    roofline,
    sort_is_bandwidth_bound,
)
from repro.units import GB


class TestMachineBalance:
    def test_value(self):
        assert machine_balance(2e12, 90 * GB) == pytest.approx(2e12 / 90e9)

    def test_rejects_non_positive(self):
        with pytest.raises(ConfigError):
            machine_balance(0, 1)
        with pytest.raises(ConfigError):
            machine_balance(1, 0)


class TestSnir:
    def test_low_intensity_is_bandwidth_bound(self):
        # 0.1 op/byte against a balance of ~22 op/byte.
        assert is_bandwidth_bound(1e9, 1e10, 2e12, 90 * GB)

    def test_high_intensity_is_compute_bound(self):
        assert not is_bandwidth_bound(1e14, 1e9, 2e12, 90 * GB)

    def test_zero_traffic_rejected(self):
        with pytest.raises(ConfigError):
            is_bandwidth_bound(1.0, 0.0, 1.0, 1.0)


class TestRoofline:
    def test_bandwidth_regime(self):
        pt = roofline(1e9, 1e10, 2e12, 90 * GB)
        assert pt.bandwidth_bound
        assert pt.attainable == pytest.approx(pt.intensity * 90e9)

    def test_compute_regime(self):
        pt = roofline(1e14, 1e9, 2e12, 90 * GB)
        assert not pt.bandwidth_bound
        assert pt.attainable == 2e12

    def test_ridge_point(self):
        balance = machine_balance(2e12, 90 * GB)
        pt = roofline(balance * 1e9, 1e9, 2e12, 90 * GB)
        assert pt.attainable == pytest.approx(2e12)


class TestSortBoundedness:
    def test_sort_on_knl_is_bandwidth_bound(self):
        """Bender et al.'s prediction: at high core counts mergesort's
        ~1-2 compare ops per byte is far below KNL's balance."""
        assert sort_is_bandwidth_bound(
            n=2_000_000_000,
            element_size=8,
            compare_ops_per_element_pass=8.0,
            passes=31.0,
            peak_ops=68 * 1.4e9 * 2,  # 68 cores, 1.4 GHz, 2 ops/cycle
            bandwidth=90 * GB,
        )

    def test_tiny_machine_not_bandwidth_bound(self):
        """A single slow core cannot saturate memory."""
        assert not sort_is_bandwidth_bound(
            n=1_000_000,
            element_size=8,
            compare_ops_per_element_pass=50.0,
            passes=20.0,
            peak_ops=1e8,
            bandwidth=90 * GB,
        )

    def test_invalid_args(self):
        with pytest.raises(ConfigError):
            sort_is_bandwidth_bound(0, 8, 1, 1, 1, 1)
