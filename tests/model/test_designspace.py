"""Tests for the design-space exploration."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.model.designspace import (
    crossover_passes,
    evaluate_point,
    sweep_bandwidth_ratio,
    sweep_far_bandwidth,
)
from repro.model.params import ModelParams


class TestEvaluatePoint:
    def test_matches_optimizer(self):
        pt = evaluate_point(ModelParams(), 256, passes=1.0)
        assert pt.best_p_in == 10
        assert pt.copy_bound
        assert pt.bandwidth_ratio == pytest.approx(400 / 90)

    def test_compute_bound_point(self):
        pt = evaluate_point(ModelParams(), 256, passes=64.0)
        assert not pt.copy_bound
        assert pt.best_p_in == 1


class TestBandwidthRatioSweep:
    def test_more_near_bandwidth_never_slower(self):
        pts = sweep_bandwidth_ratio(passes=4.0)
        times = [p.best_time for p in pts]
        for a, b in zip(times, times[1:]):
            assert b <= a * (1 + 1e-9)

    def test_saturates_at_copy_bound(self):
        """Beyond some ratio the DDR-limited copy floor dominates and
        extra MCDRAM bandwidth buys nothing — the co-design insight."""
        pts = sweep_bandwidth_ratio(passes=1.0, ratios=[6.0, 8.0, 16.0])
        floor = 2 * ModelParams().b_copy / ModelParams().ddr_max
        for p in pts:
            assert p.best_time == pytest.approx(floor, rel=1e-6)
            assert p.copy_bound

    def test_rejects_bad_ratio(self):
        with pytest.raises(ConfigError):
            sweep_bandwidth_ratio(ratios=[0.0])


class TestFarBandwidthSweep:
    def test_far_bandwidth_lifts_copy_floor(self):
        pts = sweep_far_bandwidth(passes=1.0, ddr_values=[45e9, 90e9, 180e9])
        times = [p.best_time for p in pts]
        assert times[0] > times[1] >= times[2]

    def test_rejects_bad_bandwidth(self):
        with pytest.raises(ConfigError):
            sweep_far_bandwidth(ddr_values=[-1.0])


class TestCrossover:
    def test_crossover_between_known_regimes(self):
        """Repeats=2 is copy-bound and repeats=8 compute-bound in the
        paper's Table 3; the crossover must sit between."""
        x = crossover_passes()
        assert 2.0 < x < 8.0

    def test_consistent_with_floor_liftoff(self):
        x = crossover_passes()
        p = ModelParams()
        floor = 2 * p.b_copy / p.ddr_max
        below = evaluate_point(p, 256, x * 0.9).best_time
        above = evaluate_point(p, 256, x * 1.1).best_time
        assert below == pytest.approx(floor, rel=1e-3)
        assert above > floor * 1.01

    def test_bad_bounds_rejected(self):
        with pytest.raises(ConfigError):
            crossover_passes(lo=2.0, hi=1.0)
