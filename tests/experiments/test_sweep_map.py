"""Tests for the parallel sweep runner (sweep_map / config_hash)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.experiments.runner import config_hash, sweep_map
from repro.telemetry import runtime as _tm

CALLS: list[tuple] = []


def _cell(a: int, b: int) -> int:
    CALLS.append((a, b))
    return a * 10 + b


class TestConfigHash:
    def test_deterministic(self):
        assert config_hash(("f", (1, 2))) == config_hash(("f", (1, 2)))

    def test_distinguishes_configs(self):
        assert config_hash(("f", (1, 2))) != config_hash(("f", (2, 1)))
        assert config_hash(("f", (1,))) != config_hash(("g", (1,)))

    def test_handles_non_json_types(self):
        from repro.core.modes import UsageMode

        h1 = config_hash((UsageMode.FLAT, 1.5))
        h2 = config_hash((UsageMode.CACHE, 1.5))
        assert h1 != h2
        assert h1 == config_hash((UsageMode.FLAT, 1.5))

    def test_rejects_address_bearing_repr(self):
        class Opaque:  # default object.__repr__ embeds the address
            pass

        with pytest.raises(ConfigError, match="Opaque"):
            config_hash(("f", (Opaque(),)))

    def test_accepts_stable_custom_repr(self):
        from dataclasses import dataclass

        @dataclass(frozen=True)
        class Stable:
            x: int

        assert config_hash(("f", (Stable(1),))) == config_hash(
            ("f", (Stable(1),))
        )


class TestSweepMap:
    def test_serial_order_preserved(self):
        cells = [(1, 2), (3, 4), (5, 6)]
        assert sweep_map(_cell, cells, memo={}) == [12, 34, 56]

    def test_memo_skips_repeat_cells(self):
        memo: dict = {}
        CALLS.clear()
        sweep_map(_cell, [(1, 1), (2, 2)], memo=memo)
        first = len(CALLS)
        out = sweep_map(_cell, [(2, 2), (1, 1), (3, 3)], memo=memo)
        assert out == [22, 11, 33]
        assert len(CALLS) == first + 1  # only (3, 3) computed

    def test_parallel_matches_serial(self):
        cells = [(i, i + 1) for i in range(6)]
        serial = sweep_map(_cell, cells, memo={})
        parallel = sweep_map(_cell, cells, jobs=2, memo={})
        assert serial == parallel

    def test_bad_jobs_rejected(self):
        with pytest.raises(ConfigError):
            sweep_map(_cell, [(1, 1)], jobs=0)

    def test_bad_pool_rejected(self):
        with pytest.raises(ConfigError, match="pool"):
            sweep_map(_cell, [(1, 1)], pool="threads")

    def test_duplicate_cells_computed_once(self):
        CALLS.clear()
        out = sweep_map(_cell, [(7, 7), (7, 7), (8, 8), (7, 7)], memo={})
        assert out == [77, 77, 88, 77]
        assert len(CALLS) == 2  # (7, 7) deduplicated within the call

    def test_memo_fills_to_cap_without_overshoot(self, monkeypatch):
        from repro.experiments import runner

        monkeypatch.setattr(runner, "_SWEEP_MEMO_MAX", 3)
        memo: dict = {}
        out = sweep_map(_cell, [(i, i) for i in range(5)], memo=memo)
        # All five results come back even though only three fit the memo.
        assert out == [0, 11, 22, 33, 44]
        assert len(memo) == 3

    def test_full_memo_still_serves_hits(self, monkeypatch):
        from repro.experiments import runner

        monkeypatch.setattr(runner, "_SWEEP_MEMO_MAX", 1)
        memo: dict = {}
        sweep_map(_cell, [(1, 1)], memo=memo)
        CALLS.clear()
        assert sweep_map(_cell, [(1, 1), (2, 2)], memo=memo) == [11, 22]
        assert CALLS == [(2, 2)]  # the cached cell was not recomputed
        assert len(memo) == 1

    def test_telemetry_session_forces_serial_and_bypasses_memo(self):
        memo: dict = {}
        sweep_map(_cell, [(4, 4)], memo=memo)
        assert memo  # populated when no session is active
        CALLS.clear()
        with _tm.telemetry_session():
            out = sweep_map(_cell, [(4, 4)], jobs=8, memo=memo)
        assert out == [44]
        assert CALLS == [(4, 4)]  # recomputed despite the memo hit
