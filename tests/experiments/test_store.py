"""Tests for the on-disk result store and replay mode."""

from __future__ import annotations

import json
import os
import subprocess
import sys
import threading
import warnings
from pathlib import Path

import pytest

from repro.errors import ConfigError, StoreError, StoreMissError
from repro.experiments import runner
from repro.experiments.runner import config_hash, replay_session, sweep_map
from repro.experiments.store import (
    ResultStore,
    default_store,
    get_store,
    require_store,
)
from repro.telemetry import names as _tn
from repro.telemetry import runtime as _tm

CALLS: list[tuple] = []


def _cell(a: int, b: int) -> tuple:
    CALLS.append((a, b))
    return (a / 3.0, a * b, [a, "x" * b], {"a": a})


def _never(*cell):  # a cell function that must not run
    raise AssertionError(f"cell function invoked for {cell!r}")


class TestValueRoundTrip:
    @pytest.mark.parametrize(
        "value",
        [
            None,
            True,
            0,
            1,
            -7,
            0.1 + 0.2,  # not representable exactly; repr round-trips
            1.0,
            float("1e-308"),
            "text",
            (1, 2.5, "s"),
            ((1, 2), [3, (4,)], {"k": (5,)}),
            [1, [2, [3]]],
            {"a": 1, "b": {"c": (2.0,)}},
            (),
            [],
            {},
        ],
    )
    def test_bit_identical(self, tmp_path, value):
        store = ResultStore(tmp_path)
        assert store.put("k" * 16, value, fn="f")
        found, back = store.get("k" * 16, fn="f")
        assert found
        assert back == value
        assert type(back) is type(value)
        assert repr(back) == repr(value)  # float bit-identity

    def test_int_float_distinguished(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("a" * 16, 1, fn="f")
        store.put("b" * 16, 1.0, fn="f")
        assert type(store.get("a" * 16)[1]) is int
        assert type(store.get("b" * 16)[1]) is float

    @pytest.mark.parametrize(
        "value",
        [
            object(),
            {1: "non-str key"},
            {"__tuple__": [1]},  # would collide with the tuple tag
            (object(),),
        ],
    )
    def test_unstorable_skipped(self, tmp_path, value):
        store = ResultStore(tmp_path)
        assert store.put("k" * 16, value, fn="f") is False
        assert store.stats.unstorable == 1
        assert store.entries() == 0


class TestResultStore:
    def test_miss_then_hit(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.get("ab" * 8) == (False, None)
        assert store.stats.misses == 1
        store.put("ab" * 8, 42, fn="f")
        assert store.get("ab" * 8, fn="f") == (True, 42)
        assert store.stats.hits == 1

    def test_sharded_layout_and_schema(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("deadbeef00000000", {"v": 1}, fn="mod.fn")
        path = tmp_path / "v1" / "de" / "deadbeef00000000.json"
        assert path.is_file()
        entry = json.loads(path.read_text())
        assert entry["schema"] == 1
        assert entry["key"] == "deadbeef00000000"
        assert entry["fn"] == "mod.fn"

    def test_fn_mismatch_is_corrupt_not_hit(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("ab" * 8, 1, fn="writer")
        with pytest.warns(UserWarning, match="corrupt"):
            found, _ = store.get("ab" * 8, fn="other")
        assert not found
        assert store.stats.corrupt == 1

    def test_no_fn_check_when_not_given(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("ab" * 8, 1, fn="writer")
        assert store.get("ab" * 8) == (True, 1)

    def test_nbytes_tracks_entries(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.nbytes() == 0
        store.put("ab" * 8, [1.0] * 50, fn="f")
        assert store.nbytes() == (
            tmp_path / "v1" / "ab" / ("ab" * 8 + ".json")
        ).stat().st_size
        assert store.entries() == 1

    def test_rejects_bad_max_entries(self, tmp_path):
        with pytest.raises(ConfigError, match="max_entries"):
            ResultStore(tmp_path, max_entries=0)

    def test_pre_existing_entries_scanned(self, tmp_path):
        ResultStore(tmp_path).put("ab" * 8, 1, fn="f")
        again = ResultStore(tmp_path)
        assert again.entries() == 1
        assert again.get("ab" * 8, fn="f") == (True, 1)


class TestCorruption:
    def _corrupt(self, store, key, text):
        path = store._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text)

    @pytest.mark.parametrize(
        "text",
        [
            "",  # truncated to nothing
            '{"schema": 1, "key"',  # truncated JSON
            "[1, 2]",  # not an object
            '{"schema": 99, "key": "k", "fn": "f", "value": 1}',  # schema
            '{"schema": 1, "key": "WRONG", "fn": "f", "value": 1}',  # key
            '{"schema": 1, "key": "KEY", "fn": "f"}',  # no value
        ],
    )
    def test_corrupt_entry_skipped_and_counted(self, tmp_path, text):
        store = ResultStore(tmp_path)
        key = "KEY"
        self._corrupt(store, key, text.replace('"KEY"', f'"{key}"'))
        with pytest.warns(UserWarning, match="corrupt"):
            found, value = store.get(key, fn="f")
        assert (found, value) == (False, None)
        assert store.stats.corrupt == 1
        assert store.stats.misses == 1

    def test_warns_once_then_counts_silently(self, tmp_path):
        store = ResultStore(tmp_path)
        self._corrupt(store, "aaaa", "garbage")
        self._corrupt(store, "bbbb", "garbage")
        with pytest.warns(UserWarning, match="corrupt"):
            store.get("aaaa")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            store.get("bbbb")  # counted, not warned
        assert store.stats.corrupt == 2

    def test_next_write_replaces_corrupt_entry(self, tmp_path):
        store = ResultStore(tmp_path)
        self._corrupt(store, "aaaa", "garbage")
        with pytest.warns(UserWarning):
            store.get("aaaa")
        store.put("aaaa", 7, fn="f")
        assert store.get("aaaa", fn="f") == (True, 7)

    def test_sweep_map_recomputes_over_corrupt_store(self, tmp_path):
        store = ResultStore(tmp_path)
        key = config_hash((_cell.__qualname__, (1, 2)))
        self._corrupt(store, key, "garbage")
        CALLS.clear()
        with pytest.warns(UserWarning, match="corrupt"):
            out = sweep_map(_cell, [(1, 2)], memo={}, store=store)
        assert CALLS == [(1, 2)]  # skipped the bad entry, recomputed
        assert store.get(key, fn=_cell.__qualname__) == (True, out[0])


class TestGC:
    def test_put_enforces_bound(self, tmp_path):
        store = ResultStore(tmp_path, max_entries=3)
        for i in range(6):
            store.put(f"{i:04x}" * 4, i, fn="f")
        assert store.entries() == 3
        assert store.stats.evictions == 3

    def test_evicts_oldest_mtime_first(self, tmp_path):
        store = ResultStore(tmp_path, max_entries=10)
        keys = [f"{i:04x}" * 4 for i in range(5)]
        for i, key in enumerate(keys):
            store.put(key, i, fn="f")
            os.utime(store._path(key), (1000 + i, 1000 + i))
        store.max_entries = 3
        assert store.gc() == 2
        assert store.entries() == 3
        assert not store._path(keys[0]).exists()
        assert not store._path(keys[1]).exists()
        for key in keys[2:]:
            assert store._path(key).exists()

    def test_hit_refreshes_lru_clock(self, tmp_path):
        store = ResultStore(tmp_path, max_entries=10)
        keys = [f"{i:04x}" * 4 for i in range(3)]
        for i, key in enumerate(keys):
            store.put(key, i, fn="f")
            os.utime(store._path(key), (1000 + i, 1000 + i))
        store.get(keys[0], fn="f")  # touch the oldest
        store.max_entries = 2
        store.gc()
        assert store._path(keys[0]).exists()  # survived: recently used
        assert not store._path(keys[1]).exists()

    def test_gc_noop_under_bound(self, tmp_path):
        store = ResultStore(tmp_path, max_entries=10)
        store.put("ab" * 8, 1, fn="f")
        assert store.gc() == 0
        assert store.entries() == 1

    def test_env_default_bound(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_MAX_ENTRIES", "2")
        store = ResultStore(tmp_path)
        assert store.max_entries == 2


class TestConcurrency:
    def test_concurrent_writers_one_dir(self, tmp_path):
        keys = [f"{i:04x}" * 4 for i in range(40)]

        def write_all():
            mine = ResultStore(tmp_path)
            for i, key in enumerate(keys):
                mine.put(key, [i, i / 7.0], fn="f")

        threads = [threading.Thread(target=write_all) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        reader = ResultStore(tmp_path)
        assert reader.entries() == len(keys)
        for i, key in enumerate(keys):
            assert reader.get(key, fn="f") == (True, [i, i / 7.0])
        assert reader.stats.corrupt == 0

    def test_gc_tolerates_concurrent_removal(self, tmp_path):
        store = ResultStore(tmp_path, max_entries=10)
        for i in range(4):
            store.put(f"{i:04x}" * 4, i, fn="f")
        store._path("0000" * 4).unlink()  # another process evicted it
        store.max_entries = 2
        store.gc()
        assert store.entries() == 2

    def test_cross_process_warm_hit_bit_identity(self, tmp_path):
        """A store warmed in another process serves identical values."""
        cells = [(1, 2), (3, 4), (7, 5)]
        code = (
            "import sys\n"
            "from repro.experiments.runner import sweep_map\n"
            "def cell(a, b):\n"
            "    return (a / 3.0, a * b, [a, 'x' * b], {'a': a})\n"
            f"cell.__qualname__ = {_cell.__qualname__!r}\n"
            f"out = sweep_map(cell, {cells!r}, memo={{}},"
            " store=sys.argv[1])\n"
            "print(repr(out))\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = str(
            Path(__file__).resolve().parents[2] / "src"
        )
        proc = subprocess.run(
            [sys.executable, "-c", code, str(tmp_path)],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        CALLS.clear()
        store = ResultStore(tmp_path)
        warm = sweep_map(_cell, cells, memo={}, store=store)
        assert CALLS == []  # every cell came from the other process
        assert store.stats.hits == len(cells)
        assert repr(warm) == proc.stdout.strip()  # bit-identical


class TestSweepMapTiers:
    def test_write_through_and_memo_warming(self, tmp_path):
        store = ResultStore(tmp_path)
        CALLS.clear()
        first = sweep_map(_cell, [(2, 3)], memo={}, store=store)
        assert CALLS == [(2, 3)]
        assert store.stats.writes == 1
        memo: dict = {}
        again = sweep_map(_cell, [(2, 3)], memo=memo, store=store)
        assert CALLS == [(2, 3)]  # store hit, no recompute
        assert again == first
        assert len(memo) == 1  # tier-2 hit warmed tier 1
        sweep_map(_cell, [(2, 3)], memo=memo, store=store)
        assert store.stats.hits == 1  # second lookup never hit disk

    def test_memo_hit_backfills_cold_store(self, tmp_path):
        # A cell computed store-less, then swept again with a store:
        # the memo answers, but the store must end up replay-complete.
        memo: dict = {}
        cold = sweep_map(_cell, [(3, 7)], memo=memo)
        CALLS.clear()
        store = ResultStore(tmp_path)
        sweep_map(_cell, [(3, 7)], memo=memo, store=store)
        assert CALLS == []  # memo hit, no recompute
        assert store.stats.writes == 1  # ...yet persisted
        with replay_session(store):
            assert sweep_map(_cell, [(3, 7)]) == cold
        key = config_hash((_cell.__qualname__, (3, 7)))
        assert store.get(key, fn=_cell.__qualname__) == (True, cold[0])

    def test_backfill_skips_entries_already_on_disk(self, tmp_path):
        store = ResultStore(tmp_path)
        memo: dict = {}
        sweep_map(_cell, [(3, 8)], memo=memo, store=store)
        sweep_map(_cell, [(3, 8)], memo=memo, store=store)
        assert store.stats.writes == 1  # no rewrite churn on hits

    def test_no_store_means_single_tier(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_STORE", raising=False)
        CALLS.clear()
        sweep_map(_cell, [(9, 9)], memo={})
        sweep_map(_cell, [(9, 9)], memo={})
        assert CALLS == [(9, 9), (9, 9)]  # fresh memo, nothing on disk

    def test_repro_store_env_default(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE", str(tmp_path))
        CALLS.clear()
        sweep_map(_cell, [(5, 6)], memo={})
        assert default_store() is get_store(tmp_path)
        sweep_map(_cell, [(5, 6)], memo={})
        assert CALLS == [(5, 6)]

    def test_telemetry_session_writes_through(self, tmp_path):
        store = ResultStore(tmp_path)
        CALLS.clear()
        with _tm.telemetry_session() as tel:
            sweep_map(_cell, [(4, 1)], memo={}, store=store)
            sweep_map(_cell, [(4, 1)], memo={}, store=store)
        # Reads bypassed (both computed), writes went through.
        assert CALLS == [(4, 1), (4, 1)]
        assert store.stats.writes == 2
        assert (
            tel.metrics.counter(_tn.STORE_WRITES_TOTAL).value() == 2
        )
        CALLS.clear()
        sweep_map(_cell, [(4, 1)], memo={}, store=store)
        assert CALLS == []  # the instrumented run warmed the store

    def test_store_telemetry_counters(self, tmp_path):
        store = ResultStore(tmp_path, max_entries=2)
        with _tm.telemetry_session() as tel:
            store.get("aa" * 8)  # miss
            for i in range(3):
                store.put(f"{i:04x}" * 4, i, fn="f")  # 3 writes, 1 gc
            store.get("0002" * 4, fn="f")  # hit
            counters = {
                name: tel.metrics.counter(name).value()
                for name in (
                    _tn.STORE_HITS_TOTAL,
                    _tn.STORE_MISSES_TOTAL,
                    _tn.STORE_WRITES_TOTAL,
                    _tn.STORE_EVICTIONS_TOTAL,
                )
            }
            nbytes = tel.metrics.gauge(_tn.STORE_BYTES).value()
        assert counters == {
            _tn.STORE_HITS_TOTAL: 1,
            _tn.STORE_MISSES_TOTAL: 1,
            _tn.STORE_WRITES_TOTAL: 3,
            _tn.STORE_EVICTIONS_TOTAL: 1,
        }
        assert nbytes == store.nbytes() > 0

    def test_memo_cap_warns_once_and_counts(self, tmp_path, monkeypatch):
        monkeypatch.setattr(runner, "_SWEEP_MEMO_MAX", 1)
        monkeypatch.setattr(runner, "_MEMO_CAP_WARNED", False)
        with _tm.telemetry_session() as tel:
            with pytest.warns(UserWarning, match="memo reached its cap"):
                sweep_map(_cell, [(1, 1), (2, 2), (3, 3)], memo={})
            evicted = tel.metrics.counter(
                _tn.SWEEP_MEMO_EVICTED_TOTAL
            ).value()
        assert evicted == 2  # first cell cached, two dropped
        # The warning fired; further drops are silent.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            sweep_map(_cell, [(4, 4), (5, 5)], memo={})


class TestReplay:
    def test_cold_store_lists_missing_hashes(self, tmp_path):
        store = ResultStore(tmp_path)
        cells = [(i, i) for i in range(12)]
        keys = [
            config_hash((_never.__qualname__, cell)) for cell in cells
        ]
        with replay_session(store):
            with pytest.raises(StoreMissError) as err:
                sweep_map(_never, cells)
        assert err.value.missing == tuple(keys)
        assert "12 of 12" in str(err.value)
        assert keys[0] in str(err.value)
        assert "(2 more)" in str(err.value)  # 10 shown, 2 elided

    def test_warm_store_replays_without_invoking_fn(self, tmp_path):
        store = ResultStore(tmp_path)
        cells = [(1, 2), (3, 4)]
        cold = sweep_map(_cell, cells, memo={}, store=store)
        never = _never
        never.__qualname__ = _cell.__qualname__
        try:
            with replay_session(store):
                warm = sweep_map(never, cells)
        finally:
            never.__qualname__ = "_never"
        assert warm == cold

    def test_replay_bypasses_memo(self, tmp_path):
        # Cells this process just computed (memo-warm) still fail
        # against a cold store: replay proves the *store* is complete.
        memo: dict = {}
        sweep_map(_cell, [(8, 8)], memo=memo)
        with replay_session(ResultStore(tmp_path)):
            with pytest.raises(StoreMissError):
                sweep_map(_cell, [(8, 8)], memo=memo)

    def test_partial_store_reports_only_misses(self, tmp_path):
        store = ResultStore(tmp_path)
        sweep_map(_cell, [(1, 2)], memo={}, store=store)
        with replay_session(store):
            with pytest.raises(StoreMissError) as err:
                sweep_map(_cell, [(1, 2), (6, 6)], memo={})
        assert err.value.missing == (
            config_hash((_cell.__qualname__, (6, 6))),
        )

    def test_require_store_without_any_configured(self, monkeypatch):
        monkeypatch.delenv("REPRO_STORE", raising=False)
        with pytest.raises(StoreError, match="--store"):
            require_store(None)

    def test_replay_session_accepts_path(self, tmp_path):
        with replay_session(tmp_path) as store:
            assert isinstance(store, ResultStore)
            assert store is get_store(tmp_path)


class TestCli:
    def test_figure7_store_then_replay_byte_identical(self, tmp_path):
        from repro.cli import main

        store = tmp_path / "store"
        cold_csv = tmp_path / "cold.csv"
        warm_csv = tmp_path / "warm.csv"
        metrics = tmp_path / "m.json"
        assert main(
            ["figure7", "--store", str(store), "--csv", str(cold_csv)]
        ) == 0
        assert main(
            [
                "replay",
                "figure7",
                "--store",
                str(store),
                "--csv",
                str(warm_csv),
                "--metrics",
                str(metrics),
            ]
        ) == 0
        assert cold_csv.read_bytes() == warm_csv.read_bytes()
        snap = json.loads(metrics.read_text())["metrics"]
        assert snap["store.hits_total"]["series"][0]["value"] > 0
        # Zero engine invocations: no engine metric was ever touched.
        assert not any(name.startswith("engine.") for name in snap)

    def test_replay_cold_store_exits_nonzero(self, tmp_path, capsys):
        from repro.cli import main

        rc = main(
            ["replay", "table3", "--store", str(tmp_path / "empty")]
        )
        assert rc == 1
        err = capsys.readouterr().err
        assert "missing" in err

    def test_replay_needs_target(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["replay", "--store", str(tmp_path)]) == 1
        assert "target" in capsys.readouterr().err

    def test_replay_rejects_unreplayable(self, tmp_path, capsys):
        from repro.cli import main

        assert (
            main(["replay", "chaos", "--store", str(tmp_path)]) == 1
        )
        assert "chaos" in capsys.readouterr().err

    def test_target_invalid_outside_replay(self, capsys):
        from repro.cli import main

        assert main(["table2", "figure7"]) == 1
        assert "only valid with 'replay'" in capsys.readouterr().err
