"""Tests for harness chaos injection and the pool's hardening.

Every fault class is injected into real worker processes of a
dedicated :class:`PersistentPool` (never the singleton — injected
kills must not perturb other tests' pools), and the contract under
test is always the same: the sweep completes bit-identical to serial
execution.
"""

from __future__ import annotations

import time

import pytest

from repro.errors import ConfigError, DegradedModeWarning
from repro.experiments.chaos import (
    HarnessFaultInjector,
    HarnessFaultKind,
    HarnessFaultPlan,
    HarnessFaultSpec,
    run_chaos,
)
from repro.experiments.pool import PersistentPool
from repro.experiments.runner import sweep_map
from repro.telemetry import names as tn
from repro.telemetry import runtime as _tm


def _cell(i: int, k: float) -> float:
    return i * 1.5 + k / 3.0


def _pool(size: int = 2, **overrides) -> PersistentPool:
    """A dedicated pool with chaos-friendly tight recovery timings."""
    params = dict(
        min_deadline_s=0.15,
        cold_deadline_s=0.5,
        hang_kill_factor=2.0,
        backoff_base_s=0.02,
        backoff_max_s=0.2,
    )
    params.update(overrides)
    return PersistentPool(size, **params)


def _one_shot(kind: HarnessFaultKind, **kw) -> HarnessFaultInjector:
    plan = HarnessFaultPlan(seed=7).add(
        HarnessFaultSpec(kind, at_dispatch=0, **kw)
    )
    return plan.injector()


CELLS = [(i, 2.0) for i in range(24)]
SERIAL = [_cell(*c) for c in CELLS]


class TestSpecValidation:
    def test_probability_bounds(self):
        with pytest.raises(ConfigError):
            HarnessFaultSpec(HarnessFaultKind.WORKER_KILL, probability=1.5)

    def test_never_firing_spec_rejected(self):
        with pytest.raises(ConfigError):
            HarnessFaultSpec(HarnessFaultKind.WORKER_KILL)

    def test_negative_severity_rejected(self):
        with pytest.raises(ConfigError):
            HarnessFaultSpec(
                HarnessFaultKind.WORKER_SLOW,
                probability=0.5,
                severity=-1.0,
            )

    def test_negative_at_dispatch_rejected(self):
        with pytest.raises(ConfigError):
            HarnessFaultSpec(HarnessFaultKind.PIPE_DROP, at_dispatch=-1)

    def test_scaled_clamps_to_one(self):
        plan = HarnessFaultPlan(0).add(
            HarnessFaultSpec(HarnessFaultKind.WORKER_SLOW, probability=0.6)
        )
        assert plan.scaled(10.0).specs[0].probability == 1.0
        with pytest.raises(ConfigError):
            plan.scaled(-1.0)

    def test_intensity_bounds(self):
        with pytest.raises(ConfigError):
            HarnessFaultPlan.chaos_suite(intensity=1.5)


class TestDeterminism:
    def test_same_seed_same_schedule(self):
        plan = HarnessFaultPlan.chaos_suite(seed=3, intensity=0.7)
        a, b = plan.injector(), plan.injector()
        verdicts_a = [a.on_dispatch(i, i) for i in range(200)]
        verdicts_b = [b.on_dispatch(i, i) for i in range(200)]
        assert verdicts_a == verdicts_b
        assert a.events == b.events
        assert a.counters.as_dict() == b.counters.as_dict()
        assert a.counters.injected > 0

    def test_draws_are_stateless_per_dispatch_index(self):
        # Consulting extra (speculative) dispatch ordinals must not
        # shift any other ordinal's verdict.
        plan = HarnessFaultPlan.chaos_suite(seed=11, intensity=0.9)
        a, b = plan.injector(), plan.injector()
        sparse = {i: a.on_dispatch(i, 0) for i in range(0, 100, 7)}
        for i in range(100):  # b consults every ordinal
            verdict = b.on_dispatch(i, 0)
            if i in sparse:
                assert verdict == sparse[i]

    def test_different_seeds_differ(self):
        verdicts = []
        for seed in (1, 2):
            inj = HarnessFaultPlan.chaos_suite(
                seed=seed, intensity=0.8
            ).injector()
            verdicts.append([inj.on_dispatch(i, 0) for i in range(100)])
        assert verdicts[0] != verdicts[1]

    def test_event_describe(self):
        inj = _one_shot(HarnessFaultKind.WORKER_KILL)
        inj.on_dispatch(0, 5)
        assert "worker-kill" in inj.events[0].describe()
        assert inj.counters.kills == 1


class TestFaultClassesBitIdentical:
    """Each fault class: the chaotic sweep equals serial execution."""

    def test_worker_kill(self):
        pool = _pool(2)
        try:
            out = pool.map(
                _cell, CELLS, chunk_cells=3,
                chaos=_one_shot(HarnessFaultKind.WORKER_KILL),
            )
        finally:
            pool.shutdown()
        assert out == SERIAL
        # The killed worker was harvested and a backed-off respawn
        # scheduled (the sweep may finish on the surviving worker
        # before the respawn itself happens).
        assert pool.stats.backoff_seconds > 0.0

    def test_worker_hang(self):
        pool = _pool(2)
        try:
            out = pool.map(
                _cell, CELLS, chunk_cells=3,
                chaos=_one_shot(HarnessFaultKind.WORKER_HANG),
            )
        finally:
            pool.shutdown()
        assert out == SERIAL
        assert (
            pool.stats.deadline_expiries >= 1
            or pool.stats.degraded_calls >= 1
        )

    def test_worker_slow(self):
        plan = HarnessFaultPlan(seed=5).add(
            HarnessFaultSpec(
                HarnessFaultKind.WORKER_SLOW,
                probability=1.0,
                severity=0.001,
            )
        )
        pool = _pool(2)
        try:
            out = pool.map(
                _cell, CELLS, chunk_cells=3, chaos=plan.injector()
            )
        finally:
            pool.shutdown()
        assert out == SERIAL

    def test_ring_corrupt(self):
        pool = _pool(2)
        try:
            out = pool.map(
                _cell, CELLS, chunk_cells=3,
                chaos=_one_shot(HarnessFaultKind.RING_CORRUPT),
            )
        finally:
            pool.shutdown()
        assert out == SERIAL
        assert pool.stats.ring_corrupt >= 1
        # The refetch came back over the type-exact pickle path.
        assert pool.stats.pickle_results >= 1

    def test_every_payload_corrupt_still_completes(self):
        plan = HarnessFaultPlan(seed=5).add(
            HarnessFaultSpec(
                HarnessFaultKind.RING_CORRUPT, probability=1.0
            )
        )
        pool = _pool(2)
        try:
            out = pool.map(
                _cell, CELLS, chunk_cells=4, chaos=plan.injector()
            )
        finally:
            pool.shutdown()
        assert out == SERIAL
        assert pool.stats.ring_corrupt >= 1

    def test_pipe_drop(self):
        pool = _pool(2)
        try:
            out = pool.map(
                _cell, CELLS, chunk_cells=3,
                chaos=_one_shot(HarnessFaultKind.PIPE_DROP),
            )
        finally:
            pool.shutdown()
        assert out == SERIAL
        # Only the deadline recovers a dropped dispatch.
        assert pool.stats.deadline_expiries >= 1
        assert pool.stats.speculative >= 1


class TestDeadlinesAndSpeculation:
    def test_hung_worker_sweep_bounded_by_deadline(self):
        pool = _pool(2, cold_deadline_s=0.4)
        try:
            t0 = time.monotonic()
            out = pool.map(
                _cell, CELLS, chunk_cells=3,
                chaos=_one_shot(HarnessFaultKind.WORKER_HANG),
            )
            wall = time.monotonic() - t0
        finally:
            pool.shutdown()
        assert out == SERIAL
        # Without deadlines this would stall forever on the hung
        # worker; the bound is a few deadline multiples plus slack,
        # far below the old infinite wait.
        assert wall < 15.0

    def test_dropped_dispatch_does_not_burn_attempts(self):
        pool = _pool(2, cold_deadline_s=0.3)
        try:
            out = pool.map(
                _cell, CELLS, chunk_cells=3,
                chaos=_one_shot(HarnessFaultKind.PIPE_DROP),
            )
        finally:
            pool.shutdown()
        assert out == SERIAL
        chunks = pool._last_chunks
        # The dropped send never reached a worker, so it must not
        # count as an attempt; the speculative resend is the first
        # (and only) delivered attempt.
        assert all(c.attempts <= 1 for c in chunks)
        assert any(c.speculated for c in chunks)

    def test_healthy_sweep_never_speculates(self):
        pool = _pool(2)
        try:
            out = pool.map(_cell, CELLS, chunk_cells=3)
        finally:
            pool.shutdown()
        assert out == SERIAL
        assert pool.stats.speculative == 0
        assert pool.stats.deadline_expiries == 0
        assert pool.stats.ring_corrupt == 0
        assert pool.stats.degraded_calls == 0


class TestGracefulDegradation:
    def test_breaker_opens_and_sweep_completes_serially(self):
        plan = HarnessFaultPlan(seed=9).add(
            HarnessFaultSpec(
                HarnessFaultKind.WORKER_KILL, probability=1.0
            )
        )
        pool = _pool(1, breaker_respawns=1)
        try:
            with pytest.warns(DegradedModeWarning):
                out = pool.map(
                    _cell, CELLS, chunk_cells=4, chaos=plan.injector()
                )
            assert out == SERIAL
            assert pool.stats.degraded_calls == 1
            # The pool reset itself: the next (healthy) call works.
            again = pool.map(_cell, CELLS, chunk_cells=4)
            assert again == SERIAL
            assert pool.stats.degraded_calls == 1
        finally:
            pool.shutdown()

    def test_degraded_gauge_and_counters_emitted(self):
        plan = HarnessFaultPlan(seed=9).add(
            HarnessFaultSpec(
                HarnessFaultKind.WORKER_KILL, probability=1.0
            )
        )
        pool = _pool(1, breaker_respawns=1)
        try:
            with _tm.telemetry_session() as tel:
                with pytest.warns(DegradedModeWarning):
                    pool.map(
                        _cell, CELLS, chunk_cells=4,
                        chaos=plan.injector(),
                    )
            snap = tel.metrics.snapshot()
            assert snap[tn.SWEEP_DEGRADED]["series"][0]["value"] == 1.0
            assert tn.SWEEP_DEADLINE_TOTAL in snap
            assert tn.SWEEP_SPECULATIVE_TOTAL in snap
            assert tn.SWEEP_RING_CORRUPT_TOTAL in snap
            assert (
                snap[tn.SWEEP_BACKOFF_SECONDS_TOTAL]["series"][0]["value"]
                > 0.0
            )
        finally:
            pool.shutdown()


class TestSweepMapIntegration:
    def test_chaos_requires_parallel_persistent(self):
        inj = HarnessFaultPlan.chaos_suite(seed=0, intensity=0.5).injector()
        with pytest.raises(ConfigError, match="jobs > 1"):
            sweep_map(_cell, CELLS, chaos=inj)
        with pytest.raises(ConfigError, match="persistent"):
            sweep_map(_cell, CELLS, jobs=2, pool="fork", chaos=inj)

    def test_chaos_run_bypasses_memo(self):
        from repro.experiments.pool import shutdown_pool

        shutdown_pool()
        try:
            memo: dict = {}
            inj = _one_shot(HarnessFaultKind.RING_CORRUPT)
            out = sweep_map(
                _cell, CELLS, jobs=2, memo=memo,
                pool="persistent", chaos=inj,
            )
            assert out == SERIAL
            assert memo == {}  # chaos runs never warm the memo
        finally:
            shutdown_pool()


class TestDriver:
    def test_rejects_empty_intensities(self):
        with pytest.raises(ConfigError):
            run_chaos(intensities=())

    def test_rejects_fork_pool(self):
        with pytest.raises(ConfigError):
            run_chaos(pool="fork")

    def test_short_sweep_completes_at_all_intensities(self):
        result = run_chaos(
            seed=42, intensities=(0.0, 0.6), ncells=32, jobs=2
        )
        assert [r["intensity"] for r in result.rows] == [0.0, 0.6]
        assert all(r["completed"] for r in result.rows)
        chaotic = result.rows[1]
        assert chaotic["injected"] > 0
        assert result.column("slowdown")[0] == 1.0


class TestAdaptiveSchedulerUnderChaos:
    """The scheduler fixes and new moves, exercised through faults."""

    def test_dropped_dispatches_do_not_leak_capacity(self):
        # Two consecutive pipe drops against a single worker used to
        # wedge the pool: the undelivered assignments stayed in the
        # prefetch ledger after expiry, starving all future dispatch
        # until the stall breaker degraded the call to serial. With
        # eviction, the deadline frees both slots and the sweep
        # finishes parallel.
        cells = [(i, 2.0) for i in range(12)]
        plan = HarnessFaultPlan(seed=3)
        plan.add(HarnessFaultSpec(HarnessFaultKind.PIPE_DROP, at_dispatch=0))
        plan.add(HarnessFaultSpec(HarnessFaultKind.PIPE_DROP, at_dispatch=1))
        pool = _pool(1)
        try:
            out = pool.map(
                _cell, cells, chunk_cells=3, chaos=plan.injector()
            )
        finally:
            pool.shutdown()
        assert out == [_cell(*c) for c in cells]
        assert pool.stats.deadline_expiries >= 2
        assert pool.stats.degraded_calls == 0

    def test_steal_rescues_hung_workers_backlog(self):
        # The hung worker's prefetched second chunk is unstarted; the
        # idle survivor steals it instead of waiting for the deadline.
        pool = _pool(2, cold_deadline_s=1.0, steal_min_s=0.05)
        try:
            out = pool.map(
                _cell, CELLS, chunk_cells=3,
                chaos=_one_shot(HarnessFaultKind.WORKER_HANG),
            )
        finally:
            pool.shutdown()
        assert out == SERIAL
        assert pool.stats.steals >= 1

    @pytest.mark.parametrize("intensity", [0.4, 0.9])
    def test_full_matrix_bit_identical_with_steal_and_autoscale(
        self, intensity
    ):
        # The headline contract survives the new scheduler moves: the
        # whole fault matrix with stealing and autoscaling enabled
        # still reassembles bit-identical to serial.
        inj = HarnessFaultPlan.chaos_suite(
            seed=13, intensity=intensity
        ).injector()
        pool = _pool(3, steal_min_s=0.03)
        try:
            out = pool.map(_cell, CELLS, chunk_cells=3, chaos=inj)
        finally:
            pool.shutdown()
        assert out == SERIAL
