"""Tests for report rendering and the CLI."""

from __future__ import annotations

import csv
import io

import pytest

from repro.cli import build_parser, main
from repro.errors import ConfigError
from repro.experiments import ALL_EXPERIMENTS
from repro.experiments.report import render_series, render_table, to_csv
from repro.experiments.runner import ExperimentResult, SeriesSpec


@pytest.fixture
def result():
    return ExperimentResult(
        experiment="demo",
        title="Demo result",
        columns=["x", "y"],
        rows=[{"x": 1, "y": 2.5}, {"x": 2, "y": 5.0}],
        notes=["a note"],
    )


class TestRenderTable:
    def test_contains_title_and_values(self, result):
        text = render_table(result)
        assert "Demo result" in text
        assert "2.500" in text
        assert "note: a note" in text

    def test_missing_cells_blank(self):
        r = ExperimentResult("d", "t", ["a", "b"], [{"a": 1}])
        text = render_table(r)
        assert "1" in text

    def test_empty_rows(self):
        r = ExperimentResult("d", "t", ["a"], [])
        assert "a" in render_table(r)

    def test_empty_rows_header_sets_widths(self):
        r = ExperimentResult("d", "t", ["alpha", "b"], [])
        lines = render_table(r).splitlines()
        header, sep = lines[2], lines[3]
        assert header == "alpha | b"
        assert sep == "------+--"

    def test_long_float_widens_column(self):
        r = ExperimentResult(
            "d", "t", ["x"],
            [{"x": 123456789.123456}, {"x": 1.0}],
        )
        lines = render_table(r).splitlines()
        # abs >= 100 renders with one decimal; all rows align to it.
        assert "123456789.1" in lines[4]
        widths = {len(line) for line in lines[2:6]}
        assert len(widths) == 1

    def test_columns_aligned_with_mixed_widths(self):
        r = ExperimentResult(
            "d", "t", ["name", "v"],
            [{"name": "a", "v": 1}, {"name": "longer-name", "v": 22}],
        )
        lines = render_table(r).splitlines()
        positions = {line.index("|") for line in lines[2:] if "|" in line}
        assert len(positions) == 1


class TestRenderSeries:
    def test_bars_scale(self, result):
        text = render_series(result, "x", ["y"])
        lines = [l for l in text.splitlines() if "|" in l]
        assert len(lines) == 2
        assert lines[1].count("#") > lines[0].count("#")

    def test_unknown_column(self, result):
        with pytest.raises(ConfigError):
            render_series(result, "x", ["z"])

    def test_no_numeric_values(self):
        r = ExperimentResult("d", "t", ["x", "y"], [{"x": "a", "y": "b"}])
        with pytest.raises(ConfigError):
            render_series(r, "x", ["y"])

    def test_single_point_series(self):
        r = ExperimentResult("d", "t", ["x", "y"], [{"x": "only", "y": 3.0}])
        text = render_series(r, "x", ["y"], width=10)
        bars = [l for l in text.splitlines() if "|" in l]
        # The lone point is its own maximum: a full-width bar.
        assert len(bars) == 1
        assert bars[0].count("#") == 10
        assert "only" in bars[0]

    def test_non_numeric_rows_skipped(self):
        r = ExperimentResult(
            "d", "t", ["x", "y"],
            [{"x": "a", "y": 2.0}, {"x": "b", "y": "n/a"}],
        )
        bars = [
            l for l in render_series(r, "x", ["y"]).splitlines() if "|" in l
        ]
        assert len(bars) == 1


class TestCsv:
    def test_roundtrip(self, result):
        text = to_csv(result)
        lines = text.strip().splitlines()
        assert lines[0] == "x,y"
        assert lines[1] == "1,2.5"

    def test_roundtrip_through_csv_module(self, result):
        parsed = list(csv.DictReader(io.StringIO(to_csv(result))))
        assert parsed == [
            {"x": "1", "y": "2.5"},
            {"x": "2", "y": "5.0"},
        ]

    def test_quoting_of_commas(self):
        r = ExperimentResult(
            "d", "t", ["note"], [{"note": "a, with comma"}]
        )
        parsed = list(csv.DictReader(io.StringIO(to_csv(r))))
        assert parsed[0]["note"] == "a, with comma"

    def test_missing_cells_empty(self):
        r = ExperimentResult("d", "t", ["a", "b"], [{"a": 1}])
        parsed = list(csv.DictReader(io.StringIO(to_csv(r))))
        assert parsed[0] == {"a": "1", "b": ""}


class TestResultColumn:
    def test_column_access(self, result):
        assert result.column("y") == [2.5, 5.0]

    def test_unknown_column(self, result):
        with pytest.raises(ConfigError):
            result.column("nope")


class TestCli:
    def test_parser_accepts_experiments(self):
        p = build_parser()
        args = p.parse_args(["table2"])
        assert args.experiment == "table2"

    def test_parser_rejects_unknown(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table9"])

    def test_main_runs_table2(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out
        assert "S_copy" in out

    def test_main_runs_table3_with_csv(self, tmp_path, capsys):
        csv_path = tmp_path / "t3.csv"
        assert main(["table3", "--csv", str(csv_path)]) == 0
        assert csv_path.read_text().startswith("repeats,")

    def test_main_csv_to_stdout(self, capsys):
        assert main(["table2", "--csv", "-"]) == 0
        assert "parameter,measured_gb" in capsys.readouterr().out

    def test_main_chart_mode(self, capsys):
        assert main(["figure7", "--chart"]) == 0
        assert "#" in capsys.readouterr().out

    def test_chart_falls_back_to_table_without_spec(self, capsys):
        # table2 declares no series_spec; --chart must not crash.
        assert main(["table2", "--chart"]) == 0
        out = capsys.readouterr().out
        assert "S_copy" in out and "#" not in out


class TestSeriesSpecs:
    CHARTED = (
        "figure6", "figure7", "figure8",
        "nvm", "hybrid", "energy", "faults",
    )

    @pytest.mark.parametrize("name", CHARTED)
    def test_chart_drivers_declare_specs(self, name):
        spec = getattr(ALL_EXPERIMENTS[name], "series_spec", None)
        assert isinstance(spec, SeriesSpec), (
            f"driver {name!r} should carry a series_spec attribute"
        )
        assert spec.x and spec.ys

    def test_specs_name_real_columns(self):
        # The spec's columns must exist in the driver's own output, so
        # --chart can never fail on a column mismatch. Checked on the
        # cheapest charted driver; the others are covered by the
        # driver tests exercising their column sets.
        result = ALL_EXPERIMENTS["figure7"]()
        spec = ALL_EXPERIMENTS["figure7"].series_spec
        assert spec.x in result.columns
        for y in spec.ys:
            assert y in result.columns
