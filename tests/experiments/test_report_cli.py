"""Tests for report rendering and the CLI."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.errors import ConfigError
from repro.experiments.report import render_series, render_table, to_csv
from repro.experiments.runner import ExperimentResult


@pytest.fixture
def result():
    return ExperimentResult(
        experiment="demo",
        title="Demo result",
        columns=["x", "y"],
        rows=[{"x": 1, "y": 2.5}, {"x": 2, "y": 5.0}],
        notes=["a note"],
    )


class TestRenderTable:
    def test_contains_title_and_values(self, result):
        text = render_table(result)
        assert "Demo result" in text
        assert "2.500" in text
        assert "note: a note" in text

    def test_missing_cells_blank(self):
        r = ExperimentResult("d", "t", ["a", "b"], [{"a": 1}])
        text = render_table(r)
        assert "1" in text

    def test_empty_rows(self):
        r = ExperimentResult("d", "t", ["a"], [])
        assert "a" in render_table(r)


class TestRenderSeries:
    def test_bars_scale(self, result):
        text = render_series(result, "x", ["y"])
        lines = [l for l in text.splitlines() if "|" in l]
        assert len(lines) == 2
        assert lines[1].count("#") > lines[0].count("#")

    def test_unknown_column(self, result):
        with pytest.raises(ConfigError):
            render_series(result, "x", ["z"])

    def test_no_numeric_values(self):
        r = ExperimentResult("d", "t", ["x", "y"], [{"x": "a", "y": "b"}])
        with pytest.raises(ConfigError):
            render_series(r, "x", ["y"])


class TestCsv:
    def test_roundtrip(self, result):
        text = to_csv(result)
        lines = text.strip().splitlines()
        assert lines[0] == "x,y"
        assert lines[1] == "1,2.5"


class TestResultColumn:
    def test_column_access(self, result):
        assert result.column("y") == [2.5, 5.0]

    def test_unknown_column(self, result):
        with pytest.raises(ConfigError):
            result.column("nope")


class TestCli:
    def test_parser_accepts_experiments(self):
        p = build_parser()
        args = p.parse_args(["table2"])
        assert args.experiment == "table2"

    def test_parser_rejects_unknown(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table9"])

    def test_main_runs_table2(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out
        assert "S_copy" in out

    def test_main_runs_table3_with_csv(self, tmp_path, capsys):
        csv_path = tmp_path / "t3.csv"
        assert main(["table3", "--csv", str(csv_path)]) == 0
        assert csv_path.read_text().startswith("repeats,")

    def test_main_csv_to_stdout(self, capsys):
        assert main(["table2", "--csv", "-"]) == 0
        assert "parameter,measured_gb" in capsys.readouterr().out

    def test_main_chart_mode(self, capsys):
        assert main(["figure7", "--chart"]) == 0
        assert "#" in capsys.readouterr().out
