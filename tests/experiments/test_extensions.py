"""Tests for the extension experiment drivers."""

from __future__ import annotations

import pytest

from repro.experiments.extensions import (
    run_ablation,
    run_designspace,
    run_energy,
    run_hybrid,
    run_nvm,
    run_oblivious,
)


class TestNvm:
    def test_three_strategies(self):
        res = run_nvm(data_gib=20)
        assert {r["strategy"] for r in res.rows} == {
            "direct",
            "single",
            "double",
        }

    def test_chunking_wins(self):
        res = run_nvm(data_gib=20)
        times = {r["strategy"]: r["seconds"] for r in res.rows}
        assert times["single"] < times["direct"] / 3
        assert times["double"] < times["direct"] / 3


class TestDesignspace:
    @pytest.fixture(scope="class")
    def res(self):
        return run_designspace()

    def test_two_sweeps_present(self, res):
        sweeps = {r["sweep"] for r in res.rows}
        assert sweeps == {"mcdram/ddr ratio", "ddr GB/s"}

    def test_ratio_sweep_monotone(self, res):
        times = [
            r["best_time_s"] for r in res.rows if r["sweep"] == "mcdram/ddr ratio"
        ]
        for a, b in zip(times, times[1:]):
            assert b <= a * (1 + 1e-9)

    def test_crossover_noted(self, res):
        assert any("crossover" in n for n in res.notes)


class TestHybrid:
    def test_hybrid_matches_flat(self):
        res = run_hybrid()
        base = next(r for r in res.rows if r["config"] == "flat")["seconds"]
        for row in res.rows:
            assert row["seconds"] == pytest.approx(base, rel=0.02)


class TestAblation:
    @pytest.fixture(scope="class")
    def res(self):
        return run_ablation()

    def test_all_scenarios_present(self, res):
        assert len(res.rows) == 5

    def test_gnu_overhead_drives_mlm_ddr_gap(self, res):
        rows = {r["scenario"]: r for r in res.rows}
        full = rows["full model"]
        no_gnu = rows["no gnu overhead"]
        assert no_gnu["gnu_flat_s"] < full["gnu_flat_s"]
        assert no_gnu["headline_speedup"] < full["headline_speedup"]

    def test_reverse_shortcut_drives_order_gap(self, res):
        rows = {r["scenario"]: r for r in res.rows}
        assert rows["no reverse shortcut"]["implicit_reverse_s"] == pytest.approx(
            rows["no reverse shortcut"]["mlm_implicit_s"]
        )
        assert (
            rows["full model"]["implicit_reverse_s"]
            < rows["full model"]["mlm_implicit_s"]
        )

    def test_chunk_overhead_only_affects_mlm(self, res):
        rows = {r["scenario"]: r for r in res.rows}
        assert (
            rows["no chunk overhead"]["gnu_flat_s"]
            == rows["full model"]["gnu_flat_s"]
        )
        assert (
            rows["no chunk overhead"]["mlm_sort_s"]
            < rows["full model"]["mlm_sort_s"]
        )


class TestOblivious:
    def test_between_implicit_and_gnu(self):
        res = run_oblivious()
        for row in res.rows:
            assert row["mlm_implicit_s"] < row["oblivious_s"]
            assert row["oblivious_s"] < row["gnu_cache_s"]


class TestEnergy:
    @pytest.fixture(scope="class")
    def res(self):
        return run_energy()

    def test_all_variants(self, res):
        assert len(res.rows) == 5

    def test_implicit_most_efficient(self, res):
        by_algo = {r["algorithm"]: r for r in res.rows}
        assert (
            by_algo["MLM-implicit"]["energy_j"]
            == min(r["energy_j"] for r in res.rows)
        )
        assert (
            by_algo["MLM-implicit"]["ddr_dynamic_j"]
            < by_algo["GNU-flat"]["ddr_dynamic_j"]
        )

    def test_edp_positive(self, res):
        assert all(r["edp_js"] > 0 for r in res.rows)


class TestPollution:
    @pytest.fixture(scope="class")
    def res(self):
        from repro.experiments.extensions import run_pollution

        return run_pollution()

    def test_pollution_slows_victim(self, res):
        t = {r["scenario"]: r["victim_s"] for r in res.rows}
        assert (
            t["hybrid half-cache, no copies"]
            < t["hybrid half-cache, copy pollution"]
        )

    def test_polluted_cache_still_beats_ddr(self, res):
        t = {r["scenario"]: r["victim_s"] for r in res.rows}
        assert t["hybrid half-cache, copy pollution"] < t["no cache (DDR)"]

    def test_full_cache_fastest(self, res):
        times = [r["victim_s"] for r in res.rows]
        assert res.rows[0]["victim_s"] == min(times)


class TestExternal:
    def test_in_memory_wins_when_fits(self):
        from repro.experiments.extensions import run_external

        res = run_external()
        rows = {r["config"]: r for r in res.rows}
        mlm = next(v for k, v in rows.items() if "in-memory" in k)
        ext = rows["2B external sort"]
        assert mlm["seconds"] < ext["seconds"]

    def test_oversize_marked_infeasible_in_memory(self):
        from repro.experiments.extensions import run_external

        res = run_external()
        big = next(r for r in res.rows if "16B" in r["config"])
        assert big["feasible_in_memory"] is False
        assert big["seconds"] > 0


class TestAdaptive:
    @pytest.fixture(scope="class")
    def res(self):
        from repro.experiments.extensions import run_adaptive

        return run_adaptive()

    def test_aware_full_degrades_most(self, res):
        deg = {r["strategy"]: r["degradation"] for r in res.rows}
        assert deg["aware-full"] > 2.0
        assert deg["aware-full"] > deg["aware-half"]
        assert deg["aware-full"] > deg["adaptive-dc"]

    def test_adaptive_dc_nearly_immune(self, res):
        deg = {r["strategy"]: r["degradation"] for r in res.rows}
        assert deg["adaptive-dc"] < 1.10

    def test_conservative_tuning_costs_when_stable(self, res):
        t = {r["strategy"]: r["stable_s"] for r in res.rows}
        assert t["aware-half"] > t["aware-full"]


class TestFaults:
    @pytest.fixture(scope="class")
    def res(self):
        from repro.experiments.extensions import run_faults

        return run_faults(intensities=(0.0, 0.5, 0.9))

    def test_row_per_intensity(self, res):
        assert [r["intensity"] for r in res.rows] == [0.0, 0.5, 0.9]

    def test_graceful_vs_cliff(self, res):
        rows = {r["intensity"]: r for r in res.rows}
        # The resilient chunked sort stays within a bounded slowdown
        # while the monolithic baseline keeps getting worse.
        assert rows[0.9]["resilient_slowdown"] < rows[0.9]["monolithic_slowdown"]
        assert rows[0.9]["monolithic_s"] > rows[0.5]["monolithic_s"]
        assert rows[0.9]["degraded_to_ddr"]

    def test_recovery_events_reported(self, res):
        faulted = [r for r in res.rows if r["intensity"] > 0]
        assert all(r["recovery_events"] >= 1 for r in faulted)
        clean = res.rows[0]
        assert clean["recovery_events"] == 0

    def test_replay_identical(self):
        from repro.experiments.extensions import run_faults

        a = run_faults(intensities=(0.5,))
        b = run_faults(intensities=(0.5,))
        assert a.rows == b.rows

    def test_baseline_is_lowest_intensity_run(self):
        """Without 0.0 in the sweep, slowdowns must normalize against
        the lowest intensity actually run — not degrade to 1.0."""
        from repro.experiments.extensions import run_faults

        res = run_faults(intensities=(0.9, 0.5))
        rows = {r["intensity"]: r for r in res.rows}
        assert rows[0.5]["resilient_slowdown"] == 1.0
        assert rows[0.5]["monolithic_slowdown"] == 1.0
        assert rows[0.9]["monolithic_slowdown"] > 1.0
        assert any("0.5" in note for note in res.notes)

    def test_zero_baseline_has_no_note(self):
        from repro.experiments.extensions import run_faults

        res = run_faults(intensities=(0.0, 0.5))
        assert not any("normalized against" in n for n in res.notes)

    def test_empty_intensities_rejected(self):
        from repro.errors import ConfigError
        from repro.experiments.extensions import run_faults

        with pytest.raises(ConfigError):
            run_faults(intensities=())
