"""Tests for the sweep service and the process-lifetime bug fixes.

Covers the service's admission control, job lifecycle, NDJSON wire
protocol, and warm-store replay guarantee, plus regression tests for
the three pool/store fixes that made long-lived processes safe:
signal-tolerant pool teardown, cost-model warm start from the store
sidecar, and the validating backfill probe.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import subprocess
import sys
import threading
import time
from multiprocessing.shared_memory import SharedMemory
from pathlib import Path

import pytest

from repro.errors import AdmissionError, ServiceError
from repro.experiments import ALL_EXPERIMENTS, run_table2, run_table3
from repro.experiments.client import ServiceClient
from repro.experiments.pool import (
    COST_SIDECAR,
    PersistentPool,
    _CellCost,
    cost_key,
    current_pool,
    load_costs,
    save_costs,
    shutdown_pool,
)
from repro.experiments.runner import (
    ExperimentResult,
    replay_session,
    sweep_map,
)
from repro.experiments.service import (
    DEFAULT_CELL_WEIGHT,
    ServiceConfig,
    SweepService,
    job_id_for,
    result_from_wire,
    result_to_wire,
    start_server,
)
from repro.experiments.store import ResultStore, get_store
from repro.simknl.node import KNLNode
from repro.telemetry import names as _tn


@pytest.fixture(autouse=True)
def _fresh_pool():
    """Each test starts and ends without the process-wide singleton."""
    shutdown_pool()
    yield
    shutdown_pool()


def _cost_cell(a: int, b: int) -> float:
    return a * 1.25 + b / 7.0


def _probe_cell(a: int, b: int) -> tuple:
    _probe_cell.calls.append((a, b))
    return (a / 3.0, a * b)


_probe_cell.calls = []


def _blocking_driver(release: threading.Event, started=None):
    """A fake experiment driver that parks until ``release`` is set."""

    def driver(**kwargs):
        if started is not None:
            started.set()
        assert release.wait(timeout=30), "driver never released"
        return ExperimentResult("svc_slow", "slow", ["v"], [{"v": 1.0}])

    return driver


def _entry_files(root: Path) -> list[Path]:
    return sorted((root / "v1").rglob("*.json"))


class TestAdmissionControl:
    def test_queue_full_rejects_with_retry_after(self):
        svc = SweepService(ServiceConfig(max_queue=2, max_tenant_jobs=8))
        svc.submit("a", "table2", {"i": 1})
        svc.submit("a", "table2", {"i": 2})
        with pytest.raises(AdmissionError) as exc:
            svc.submit("b", "table2", {"i": 3})
        assert exc.value.reason == "queue_full"
        assert exc.value.retry_after_s > 0
        counter = svc.telemetry.metrics.counter(
            _tn.SERVICE_REJECTED_TOTAL
        )
        assert counter.value(reason="queue_full") == 1

    def test_tenant_job_quota(self):
        svc = SweepService(
            ServiceConfig(max_queue=8, max_tenant_jobs=1)
        )
        svc.submit("alice", "table2", {"i": 1})
        with pytest.raises(AdmissionError) as exc:
            svc.submit("alice", "table2", {"i": 2})
        assert exc.value.reason == "tenant_jobs"
        # Another tenant is unaffected by alice's quota.
        svc.submit("bob", "table2", {"i": 2})

    def test_tenant_cell_budget(self):
        svc = SweepService(
            ServiceConfig(
                max_queue=8,
                max_tenant_jobs=8,
                max_tenant_cells=DEFAULT_CELL_WEIGHT,
            )
        )
        svc.submit("alice", "adaptive", {"i": 1})
        with pytest.raises(AdmissionError) as exc:
            svc.submit("alice", "adaptive", {"i": 2})
        assert exc.value.reason == "tenant_cells"

    def test_duplicate_inflight_submission_is_idempotent(self):
        svc = SweepService(ServiceConfig(max_queue=1))
        first = svc.submit("a", "table2", {"i": 1})
        again = svc.submit("a", "table2", {"i": 1})
        assert again is first  # no queue budget consumed
        admitted = svc.telemetry.metrics.counter(
            _tn.SERVICE_ADMITTED_TOTAL
        )
        assert admitted.value() == 1

    def test_draining_rejects_new_submissions(self):
        svc = SweepService(ServiceConfig())
        asyncio.run(svc.drain())
        with pytest.raises(AdmissionError) as exc:
            svc.submit("a", "table2")
        assert exc.value.reason == "draining"

    def test_unknown_experiment_rejected(self):
        svc = SweepService(ServiceConfig())
        with pytest.raises(ServiceError, match="unknown experiment"):
            svc.submit("a", "nope")

    def test_reserved_params_rejected(self):
        svc = SweepService(ServiceConfig())
        with pytest.raises(ServiceError, match="service-owned"):
            svc.submit("a", "table2", {"jobs": 8})

    def test_job_ids_deterministic_and_param_order_free(self):
        a = job_id_for("t", "figure7", {"x": 1, "y": 2})
        b = job_id_for("t", "figure7", {"y": 2, "x": 1})
        c = job_id_for("t", "figure7", {"x": 1, "y": 3})
        assert a == b
        assert a != c
        assert a != job_id_for("other", "figure7", {"x": 1, "y": 2})


class TestLifecycle:
    def test_cancel_mid_queue(self, monkeypatch):
        release = threading.Event()
        started = threading.Event()
        monkeypatch.setitem(
            ALL_EXPERIMENTS, "svc_slow", _blocking_driver(release, started)
        )

        async def scenario():
            svc = SweepService(
                ServiceConfig(job_workers=1, max_tenant_jobs=8)
            )
            await svc.start()
            running = svc.submit("a", "svc_slow", {"i": 1})
            queued = svc.submit("a", "svc_slow", {"i": 2})
            await asyncio.get_running_loop().run_in_executor(
                None, started.wait, 10
            )
            assert running.state == "running"
            assert queued.state == "queued"
            assert svc.cancel(queued.id) is True
            assert queued.state == "cancelled"
            assert queued.done.is_set()
            # A running job cannot be cancelled, only awaited.
            assert svc.cancel(running.id) is False
            release.set()
            await asyncio.wait_for(running.done.wait(), timeout=30)
            assert running.state == "done"
            completed = svc.telemetry.metrics.counter(
                _tn.SERVICE_COMPLETED_TOTAL
            )
            assert completed.value(state="cancelled") == 1
            assert completed.value(state="done") == 1
            await svc.drain()

        asyncio.run(scenario())

    def test_failed_driver_reports_error(self, monkeypatch):
        def boom(**kwargs):
            raise ValueError("cell exploded")

        monkeypatch.setitem(ALL_EXPERIMENTS, "svc_boom", boom)

        async def scenario():
            svc = SweepService(ServiceConfig())
            await svc.start()
            job = svc.submit("a", "svc_boom")
            await asyncio.wait_for(job.done.wait(), timeout=30)
            assert job.state == "failed"
            assert "ValueError" in job.error
            assert "cell exploded" in job.error
            await svc.drain()

        asyncio.run(scenario())

    def test_drain_cancels_queued_and_finishes_running(self, monkeypatch):
        release = threading.Event()
        started = threading.Event()
        monkeypatch.setitem(
            ALL_EXPERIMENTS, "svc_slow", _blocking_driver(release, started)
        )

        async def scenario():
            svc = SweepService(
                ServiceConfig(job_workers=1, max_tenant_jobs=8)
            )
            await svc.start()
            running = svc.submit("a", "svc_slow", {"i": 1})
            queued = svc.submit("a", "svc_slow", {"i": 2})
            await asyncio.get_running_loop().run_in_executor(
                None, started.wait, 10
            )
            release.set()
            await svc.drain()
            assert running.state == "done"
            assert queued.state == "cancelled"
            with pytest.raises(AdmissionError):
                svc.submit("a", "svc_slow", {"i": 3})

        asyncio.run(scenario())


class _Server:
    """Run a service + TCP server inside one test coroutine."""

    def __init__(self, config: ServiceConfig) -> None:
        self.service = SweepService(config)
        self.server = None
        self.port = None

    async def __aenter__(self) -> "_Server":
        await self.service.start()
        self.server = await start_server(self.service)
        self.port = self.server.sockets[0].getsockname()[1]
        return self

    async def __aexit__(self, *exc) -> None:
        await self.service.drain()
        self.server.close()
        await self.server.wait_closed()


def _submit_blocking(port, experiment, tenant, **kwargs):
    with ServiceClient("127.0.0.1", port) as client:
        return client.submit(experiment, tenant=tenant, **kwargs)


class TestWireProtocol:
    def test_concurrent_tenants_bit_identical(self, tmp_path):
        """Two tenants' concurrent jobs match direct driver runs."""
        direct = {
            "table2": result_to_wire(run_table2()),
            "table3": result_to_wire(run_table3()),
        }

        async def scenario():
            config = ServiceConfig(store=str(tmp_path), jobs=2)
            async with _Server(config) as srv:
                loop = asyncio.get_running_loop()
                submissions = [
                    ("alice", "table2"),
                    ("alice", "table3"),
                    ("bob", "table2"),
                    ("bob", "table3"),
                ]
                responses = await asyncio.gather(*[
                    loop.run_in_executor(
                        None, _submit_blocking, srv.port, exp, tenant
                    )
                    for tenant, exp in submissions
                ])
            for (tenant, exp), response in zip(submissions, responses):
                assert response["state"] == "done"
                assert json.dumps(
                    response["result"], sort_keys=True
                ) == json.dumps(direct[exp], sort_keys=True)

        asyncio.run(scenario())

    def test_queue_full_over_the_wire_never_hangs(self, monkeypatch):
        release = threading.Event()
        monkeypatch.setitem(
            ALL_EXPERIMENTS, "svc_slow", _blocking_driver(release)
        )

        async def scenario():
            config = ServiceConfig(
                job_workers=1, max_queue=1, max_tenant_jobs=8
            )
            async with _Server(config) as srv:
                loop = asyncio.get_running_loop()

                def fill_then_overflow():
                    with ServiceClient("127.0.0.1", srv.port) as c:
                        c.submit(
                            "svc_slow", tenant="a",
                            params={"i": 1}, wait=False,
                        )
                        c.submit(
                            "svc_slow", tenant="a",
                            params={"i": 2}, wait=False,
                        )
                        with pytest.raises(AdmissionError) as exc:
                            c.submit(
                                "svc_slow", tenant="a",
                                params={"i": 3}, wait=False,
                            )
                        return exc.value

                t0 = time.monotonic()
                rejection = await asyncio.wait_for(
                    loop.run_in_executor(None, fill_then_overflow),
                    timeout=10,
                )
                assert time.monotonic() - t0 < 10
                assert rejection.reason == "queue_full"
                assert rejection.retry_after_s > 0
                release.set()

        asyncio.run(scenario())

    def test_status_wait_cancel_and_metrics_verbs(self, monkeypatch):
        release = threading.Event()
        started = threading.Event()
        monkeypatch.setitem(
            ALL_EXPERIMENTS, "svc_slow", _blocking_driver(release, started)
        )

        async def scenario():
            config = ServiceConfig(job_workers=1, max_tenant_jobs=8)
            async with _Server(config) as srv:
                loop = asyncio.get_running_loop()

                def converse():
                    with ServiceClient("127.0.0.1", srv.port) as c:
                        assert c.ping()
                        running = c.submit(
                            "svc_slow", tenant="a",
                            params={"i": 1}, wait=False,
                        )
                        queued = c.submit(
                            "svc_slow", tenant="a",
                            params={"i": 2}, wait=False,
                        )
                        started.wait(10)
                        assert c.status(
                            running["job_id"]
                        )["state"] == "running"
                        assert c.cancel(queued["job_id"]) is True
                        assert c.status(
                            queued["job_id"]
                        )["state"] == "cancelled"
                        release.set()
                        done = c.wait(running["job_id"], timeout=30)
                        assert done["state"] == "done"
                        text = c.metrics()
                        assert "service_admitted_total 2" in text
                        assert (
                            'service_completed_total{state="done"} 1'
                            in text
                        )
                        with pytest.raises(ServiceError):
                            c.status("no-such-job")

                await asyncio.wait_for(
                    loop.run_in_executor(None, converse), timeout=30
                )

        asyncio.run(scenario())

    def test_warm_store_serves_with_zero_engine_invocations(
        self, tmp_path, monkeypatch
    ):
        """A re-submitted job replays from the store: no engine work."""

        async def scenario():
            config = ServiceConfig(store=str(tmp_path), jobs=1)
            async with _Server(config) as srv:
                loop = asyncio.get_running_loop()
                first = await loop.run_in_executor(
                    None, _submit_blocking, srv.port, "figure7", "a"
                )
                assert first["state"] == "done"

                engine_calls = []
                original = KNLNode.run

                def counting_run(self, plan):
                    engine_calls.append(plan)
                    return original(self, plan)

                monkeypatch.setattr(KNLNode, "run", counting_run)
                second = await loop.run_in_executor(
                    None, _submit_blocking, srv.port, "figure7", "b"
                )
                assert second["state"] == "done"
                assert second["served"] == "store"
                assert engine_calls == []
                assert second["result"] == first["result"]

        asyncio.run(scenario())

    def test_result_round_trip_renders_identically(self):
        from repro.experiments.report import render_table, to_csv

        direct = run_table2()
        back = result_from_wire(
            json.loads(json.dumps(result_to_wire(direct)))
        )
        assert render_table(back) == render_table(direct)
        assert to_csv(back) == to_csv(direct)


class TestSignalSafeTeardown:
    def test_shutdown_unlinks_rings_after_worker_death(self):
        pool = PersistentPool(2)
        pool.map(_cost_cell, [(i, 1) for i in range(8)])
        workers = list(pool._workers)
        assert workers
        names = [w.shm.name for w in workers]
        for worker in workers:
            worker.process.kill()
            worker.process.join()
        pool.shutdown()
        pool.shutdown()  # idempotent
        for name in names:
            with pytest.raises(FileNotFoundError):
                SharedMemory(name=name)

    def test_idle_reap_retires_quiet_workers(self):
        pool = PersistentPool(2, idle_reap_s=0.05)
        serial = [_cost_cell(i, 1) for i in range(8)]
        assert pool.map(_cost_cell, [(i, 1) for i in range(8)]) == serial
        assert pool._workers
        time.sleep(0.12)
        assert pool.reap_idle() >= 1
        assert not pool._workers
        # The pool respawns on demand and stays bit-identical.
        assert pool.map(_cost_cell, [(i, 1) for i in range(8)]) == serial
        pool.shutdown()

    def test_reap_idle_spares_recently_used_pool(self):
        pool = PersistentPool(2, idle_reap_s=3600.0)
        pool.map(_cost_cell, [(1, 1)])
        assert pool.reap_idle() == 0
        assert pool._workers
        pool.shutdown()

    def test_serve_sigterm_drains_without_shm_leak(self, tmp_path):
        if not os.path.isdir("/dev/shm"):
            pytest.skip("no /dev/shm on this platform")
        before = set(os.listdir("/dev/shm"))
        env = dict(os.environ)
        env["PYTHONPATH"] = str(
            Path(__file__).resolve().parents[2] / "src"
        )
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--port", "0", "--store", str(tmp_path), "--jobs", "2",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=env,
        )
        try:
            line = proc.stderr.readline()
            assert "listening on" in line, line
            port = int(line.rsplit(":", 1)[1])
            # figure7 supports jobs, so this forks pool workers and
            # creates their /dev/shm rings inside the server.
            response = _submit_blocking(port, "figure7", "a")
            assert response["state"] == "done"
            proc.send_signal(signal.SIGTERM)
            _, err = proc.communicate(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 0
        assert "leaked" not in err  # resource_tracker stayed quiet
        leaked = {
            n for n in set(os.listdir("/dev/shm")) - before
            if n.startswith("psm_")
        }
        assert leaked == set()


class TestCostModelSidecar:
    def test_sidecar_roundtrip(self, tmp_path):
        costs = {"f": _CellCost(mean_s=0.01, max_s=0.04, chunks=3)}
        assert save_costs(tmp_path, costs)
        back = load_costs(tmp_path)
        assert back["f"].mean_s == 0.01
        assert back["f"].max_s == 0.04
        assert back["f"].chunks == 3

    @pytest.mark.parametrize(
        "text",
        [
            "{not json",
            '{"schema": 999, "costs": {"f": {}}}',
            '{"schema": 1, "costs": {"f": {"mean_s": -1, '
            '"max_s": 1, "chunks": 1}}}',
            '{"schema": 1, "costs": {"f": {"mean_s": true, '
            '"max_s": 1, "chunks": 1}}}',
            '{"schema": 1, "costs": "nope"}',
            "[]",
        ],
    )
    def test_corrupt_sidecar_reads_empty(self, tmp_path, text):
        (tmp_path / COST_SIDECAR).write_text(text)
        assert load_costs(tmp_path) == {}

    def test_missing_sidecar_reads_empty(self, tmp_path):
        assert load_costs(tmp_path) == {}

    def test_warm_seeds_only_cold_entries_once(self, tmp_path):
        save_costs(tmp_path, {
            "warm": _CellCost(mean_s=0.5, max_s=0.5, chunks=5),
            "cold": _CellCost(mean_s=0.25, max_s=0.25, chunks=7),
        })
        pool = PersistentPool(2)
        pool._cell_cost["warm"] = _CellCost(
            mean_s=9.0, max_s=9.0, chunks=99
        )
        assert pool.warm_costs(tmp_path) == 1  # only "cold" seeded
        # A live in-process measurement outranks the sidecar.
        assert pool._cell_cost["warm"].mean_s == 9.0
        assert pool._cell_cost["cold"].chunks == 7
        # Each sidecar is consulted once per pool.
        assert pool.warm_costs(tmp_path) == 0
        pool.shutdown()

    def test_persist_empty_model_is_noop(self, tmp_path):
        pool = PersistentPool(2)
        assert pool.persist_costs(tmp_path) is False
        assert not (tmp_path / COST_SIDECAR).exists()
        pool.shutdown()

    def test_sweep_persists_and_next_process_warm_starts(self, tmp_path):
        """Regression: the EWMA model survives across 'processes'."""
        cells_a = [(i, 1) for i in range(8)]
        sweep_map(
            _cost_cell, cells_a, jobs=2, memo={}, store=str(tmp_path),
            pool="persistent",
        )
        sidecar = load_costs(tmp_path)
        key = cost_key(_cost_cell)
        assert key in sidecar  # runner persisted after the sweep
        assert sidecar[key].chunks >= 1

        # Simulate a new process: fresh pool, sentinel chunk count in
        # the sidecar proves the runner seeded the cold model from it.
        shutdown_pool()
        planted = sidecar[key]
        planted.chunks = 7777
        save_costs(tmp_path, {key: planted})
        cells_b = [(i, 2) for i in range(8)]
        out = sweep_map(
            _cost_cell, cells_b, jobs=2, memo={}, store=str(tmp_path),
            pool="persistent",
        )
        assert out == [_cost_cell(*c) for c in cells_b]
        pool = current_pool()
        assert pool is not None
        assert pool._cell_cost[key].chunks > 7777
        # ... and this process's observations were persisted in turn.
        assert load_costs(tmp_path)[key].chunks > 7777


class TestValidatingProbe:
    def test_probe_validates_without_stats_or_lru_touch(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("k" * 16, (1.5, "x"), fn="f")
        path = _entry_files(tmp_path)[0]
        os.utime(path, (1000, 1000))
        assert store.probe("k" * 16, fn="f") is True
        assert store.stats.hits == 0  # not counted as a hit
        assert path.stat().st_mtime == 1000  # LRU clock untouched
        assert store.probe("m" * 16) is False  # absent, not corrupt
        assert store.stats.corrupt == 0
        assert store.probe("k" * 16, fn="other") is False
        assert store.stats.corrupt == 1
        path.write_text("{garbage")
        assert store.probe("k" * 16, fn="f") is False
        assert store.stats.corrupt == 2

    def test_memo_hit_rewrites_corrupt_entry_for_replay(self, tmp_path):
        """Regression: corrupt entries behind memo hits get rewritten."""
        cells = [(2, 3), (4, 5)]
        memo: dict = {}
        store_path = str(tmp_path)
        expect = sweep_map(
            _probe_cell, cells, memo=memo, store=store_path
        )
        for path in _entry_files(tmp_path):
            path.write_text("{corrupt")
        # Every cell is a memo hit; the old existence-only probe
        # skipped the backfill here and left replay broken.
        again = sweep_map(_probe_cell, cells, memo=memo, store=store_path)
        assert again == expect
        _probe_cell.calls.clear()
        with replay_session(get_store(store_path)):
            replayed = sweep_map(_probe_cell, cells, memo={})
        assert replayed == expect
        assert _probe_cell.calls == []  # replay never computes
