"""Tests for the sweep-level cross-cell fast path.

``sweep_map`` sends pending cells of a driver that attached a
:class:`PlanBatchSpec` through one tensor evaluation instead of the
pool; cells the spec declines fall back to the normal dispatch. These
tests pin that wiring: spec used, fallback exercised, memo and store
warmed, telemetry bypass, and the hash-once-per-unique-cell dedup.
"""

from __future__ import annotations

import pytest

from repro.experiments import ALL_EXPERIMENTS
from repro.experiments import runner
from repro.experiments.runner import replay_session, sweep_map
from repro.experiments.store import get_store
from repro.simknl.batch import PlanBatch, PlanBatchSpec
from repro.simknl.engine import Engine, Phase, Plan
from repro.simknl.flows import Flow, Resource
from repro.telemetry import runtime as _tm
from repro.units import GB, GiB

RESOURCES = (Resource("ddr", 90 * GB), Resource("mcdram", 400 * GB))

FN_CALLS: list[tuple] = []
BUILD_CALLS: list[tuple] = []


def _plan(threads: int, nbytes: float) -> Plan:
    return Plan(
        "cell",
        phases=[
            Phase(
                "p",
                [Flow("f", threads, 1.0 * GB, {"ddr": 1.0}, nbytes)],
                static_rates=True,
            )
        ],
    )


def _cell(threads: int, nbytes: float) -> float:
    FN_CALLS.append((threads, nbytes))
    eng = Engine(RESOURCES, record_events=False)
    return eng.run(_plan(threads, nbytes)).elapsed


def _build(threads: int, nbytes: float) -> PlanBatch | None:
    BUILD_CALLS.append((threads, nbytes))
    if threads == 99:
        return None  # unbatchable: pool/serial fallback
    return PlanBatch(
        resources=RESOURCES,
        plans=(_plan(threads, nbytes),),
        finish=lambda runs: runs[0].elapsed,
    )


_cell.plan_batch = PlanBatchSpec(build=_build)


@pytest.fixture(autouse=True)
def _clear_calls():
    FN_CALLS.clear()
    BUILD_CALLS.clear()


class TestPlanBatchFastPath:
    def test_spec_used_instead_of_cell_fn(self):
        cells = [(8, float(GiB * (i + 1))) for i in range(4)]
        out = sweep_map(_cell, cells, memo={})
        assert len(BUILD_CALLS) == 4
        assert FN_CALLS == []  # never invoked per cell
        # Bit-identical to the serial cell function.
        assert out == [_cell(*c) for c in cells]

    def test_declined_cells_fall_back_to_cell_fn(self):
        cells = [(8, float(GiB)), (99, float(GiB)), (8, float(2 * GiB))]
        out = sweep_map(_cell, cells, memo={})
        assert FN_CALLS == [(99, float(GiB))]
        assert out[1] == _cell(99, float(GiB))

    def test_memo_warmed_by_batched_results(self):
        memo: dict = {}
        cells = [(8, float(GiB)), (8, float(2 * GiB))]
        first = sweep_map(_cell, cells, memo=memo)
        BUILD_CALLS.clear()
        second = sweep_map(_cell, cells, memo=memo)
        assert second == first
        assert BUILD_CALLS == []  # served from the memo
        assert FN_CALLS == []

    def test_store_warmed_and_replayable(self, tmp_path):
        store = get_store(tmp_path)
        cells = [(8, float(GiB)), (8, float(2 * GiB))]
        first = sweep_map(_cell, cells, memo={}, store=store)
        with replay_session(store):
            replayed = sweep_map(_cell, cells, memo={}, store=store)
        assert replayed == first
        assert FN_CALLS == []

    def test_duplicate_cells_one_batch_slot(self):
        cells = [(8, float(GiB)), (8, float(GiB)), (8, float(2 * GiB))]
        out = sweep_map(_cell, cells, memo={})
        assert len(BUILD_CALLS) == 2  # pending dedup ran first
        assert out[0] == out[1]

    def test_telemetry_session_bypasses_spec(self):
        cells = [(8, float(GiB))]
        with _tm.telemetry_session():
            out = sweep_map(_cell, cells, memo={})
        assert FN_CALLS == [(8, float(GiB))]  # serial write-through
        assert out == [_cell(8, float(GiB))]


class TestCellKeyDedup:
    def test_config_hash_once_per_unique_cell(self, monkeypatch):
        counted: list = []
        real = runner.config_hash

        def counting(payload):
            counted.append(payload)
            return real(payload)

        monkeypatch.setattr(runner, "config_hash", counting)
        cells = [(1, 1), (2, 2), (1, 1), (2, 2), (1, 1)]
        out = sweep_map(lambda a, b: a + b, cells, memo={})
        assert out == [2, 4, 2, 4, 2]
        assert len(counted) == 2

    def test_unhashable_cells_still_work(self):
        out = sweep_map(
            lambda xs: sum(xs), [([1, 2],), ([1, 2],)], memo={}
        )
        assert out == [3, 3]


class TestParetoDriver:
    @pytest.fixture(scope="class")
    def res(self):
        return ALL_EXPERIMENTS["pareto"]()

    def test_front_non_degenerate(self, res):
        on = [r for r in res.rows if r["pareto"]]
        vecs = {(r["seconds"], r["energy_j"], r["edp_js"]) for r in on}
        assert 1 < len(vecs)
        assert len(on) < len(res.rows)

    def test_objectives_positive(self, res):
        for r in res.rows:
            assert r["seconds"] > 0
            assert r["energy_j"] > 0
            assert r["edp_js"] == pytest.approx(
                r["seconds"] * r["energy_j"]
            )

    def test_modes_covered(self, res):
        assert {r["mode"] for r in res.rows} == {"flat", "implicit", "ddr"}

    def test_front_rows_undominated(self, res):
        objs = [(r["seconds"], r["energy_j"], r["edp_js"]) for r in res.rows]
        for i, r in enumerate(res.rows):
            if not r["pareto"]:
                continue
            for j, other in enumerate(objs):
                if j == i:
                    continue
                dominates = all(
                    o <= s for o, s in zip(other, objs[i])
                ) and any(o < s for o, s in zip(other, objs[i]))
                assert not dominates

    def test_store_replay_round_trip(self, tmp_path):
        store = get_store(tmp_path)
        fresh = ALL_EXPERIMENTS["pareto"](store=store)
        with replay_session(store):
            replayed = ALL_EXPERIMENTS["pareto"](store=store)
        assert replayed.rows == fresh.rows
