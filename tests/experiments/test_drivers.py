"""Tests for the experiment drivers: shape fidelity to the paper."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.experiments import (
    run_bender,
    run_figure6,
    run_figure7,
    run_figure8,
    run_table1,
    run_table2,
    run_table3,
)
from repro.experiments.runner import (
    VARIANTS,
    node_for_variant,
    paper_megachunk,
    sort_variant_seconds,
)
from repro.simknl.node import MemoryMode


# Session-scope results: drivers are deterministic, run each once.
@pytest.fixture(scope="module")
def table1():
    return run_table1()


@pytest.fixture(scope="module")
def figure6():
    return run_figure6()


@pytest.fixture(scope="module")
def figure7():
    return run_figure7()


@pytest.fixture(scope="module")
def table3():
    return run_table3()


@pytest.fixture(scope="module")
def figure8():
    return run_figure8(repeats=(1, 8, 64))


class TestRunnerHelpers:
    def test_node_modes(self):
        assert node_for_variant("GNU-cache").mode is MemoryMode.CACHE
        assert node_for_variant("MLM-implicit").mode is MemoryMode.CACHE
        assert node_for_variant("MLM-sort").mode is MemoryMode.FLAT
        assert node_for_variant("GNU-flat").mode is MemoryMode.FLAT

    def test_paper_megachunks(self):
        assert paper_megachunk(2_000_000_000) == 1_000_000_000
        assert paper_megachunk(6_000_000_000) == 1_500_000_000

    def test_unknown_variant(self):
        with pytest.raises(ConfigError):
            sort_variant_seconds("quick-sort", 10, "random")


class TestTable1(object):
    def test_has_30_cells(self, table1):
        assert len(table1.rows) == 30

    def test_all_cells_within_15_percent(self, table1):
        """Every cell within 15% of the paper, except the suspected
        6B-random MLM-ddr typo."""
        for row in table1.rows:
            if row["paper_s"] is None:
                continue
            if (
                row["elements"] == 6_000_000_000
                and row["order"] == "random"
                and row["algorithm"] == "MLM-ddr"
            ):
                continue  # paper cell duplicates the 4B row (typo)
            assert abs(row["deviation"]) < 0.15, row

    def test_mean_deviation_small(self, table1):
        devs = [
            abs(r["deviation"])
            for r in table1.rows
            if r.get("deviation") is not None
            and not (
                r["elements"] == 6_000_000_000
                and r["order"] == "random"
                and r["algorithm"] == "MLM-ddr"
            )
        ]
        assert sum(devs) / len(devs) < 0.06

    def test_ordering_within_each_workload(self, table1):
        """GNU-flat slowest, MLM variants fastest, per workload."""
        for order in ("random", "reverse"):
            for n in (2_000_000_000, 4_000_000_000, 6_000_000_000):
                times = {
                    r["algorithm"]: r["simulated_s"]
                    for r in table1.rows
                    if r["elements"] == n and r["order"] == n_order(order)
                }
                assert times["GNU-flat"] > times["GNU-cache"]
                assert times["GNU-cache"] > times["MLM-ddr"]
                assert times["MLM-ddr"] > times["MLM-sort"]

    def test_reverse_faster_than_random(self, table1):
        for algo in VARIANTS:
            t_rand = [
                r["simulated_s"]
                for r in table1.rows
                if r["algorithm"] == algo and r["order"] == "random"
            ]
            t_rev = [
                r["simulated_s"]
                for r in table1.rows
                if r["algorithm"] == algo and r["order"] == "reverse"
            ]
            assert all(v < r for v, r in zip(t_rev, t_rand))


def n_order(order: str) -> str:
    return order


class TestFigure6:
    def test_headline_speedup_range(self, figure6):
        """Best variant lands near the paper's 1.6-1.9x band. The 6B
        reverse workload overshoots slightly because the paper's
        MLM-implicit anomaly there (which its authors could not
        explain) is not reproduced."""
        best = {}
        for row in figure6.rows:
            key = (row["elements"], row["order"])
            best[key] = max(best.get(key, 0.0), row["speedup"])
        for v in best.values():
            assert 1.5 <= v <= 2.3

    def test_speedups_relative_to_gnu_flat(self, figure6):
        for row in figure6.rows:
            if row["algorithm"] == "GNU-flat":
                assert row["speedup"] == pytest.approx(1.0)
            else:
                assert row["speedup"] > 1.0

    def test_tracks_paper_speedups(self, figure6):
        for row in figure6.rows:
            if row["paper_speedup"] is None:
                continue
            if row["elements"] == 6_000_000_000 and row["algorithm"] == "MLM-ddr":
                continue  # paper typo cell
            if (
                row["elements"] == 6_000_000_000
                and row["order"] == "reverse"
                and row["algorithm"] == "MLM-implicit"
            ):
                continue  # the paper's unexplained implicit anomaly
            assert row["speedup"] == pytest.approx(
                row["paper_speedup"], rel=0.18
            )


class TestFigure7:
    def test_larger_chunks_faster_flat(self, figure7):
        flat = [r["flat_s"] for r in figure7.rows if "flat_s" in r]
        # Monotone decreasing until the plateau (allow 2% wiggle).
        assert flat[0] > flat[-1]
        for a, b in zip(flat, flat[1:]):
            assert b <= a * 1.02

    def test_implicit_tolerates_oversize_megachunks(self, figure7):
        """Beyond-MCDRAM megachunks stay near the implicit minimum."""
        imp = {r["chunk_elements"]: r["implicit_s"] for r in figure7.rows}
        best = min(imp.values())
        assert imp[6_000_000_000] <= best * 1.05

    def test_hybrid_tracks_flat(self, figure7):
        for row in figure7.rows:
            if "hybrid_s" in row and "flat_s" in row:
                assert row["hybrid_s"] == pytest.approx(row["flat_s"], rel=0.02)

    def test_one_gb_chunks_near_minimal(self, figure7):
        """Paper: 1-1.5 GB chunks give near-minimal times."""
        flat = {r["chunk_elements"]: r.get("flat_s") for r in figure7.rows}
        assert flat[1_500_000_000] <= min(
            v for v in flat.values() if v
        ) * 1.03


class TestTable2:
    def test_measured_matches_paper(self):
        res = run_table2()
        for row in res.rows:
            assert row["measured_gb"] == pytest.approx(
                row["paper_gb"], rel=0.05
            )


class TestTable3:
    def test_model_column_mostly_exact(self, table3):
        exact = sum(
            1 for r in table3.rows if r["model"] == r["paper_model"]
        )
        assert exact >= 5

    def test_both_columns_monotone_decreasing(self, table3):
        models = [r["model"] for r in table3.rows]
        emps = [r["empirical_pow2"] for r in table3.rows]
        assert models == sorted(models, reverse=True)
        assert emps == sorted(emps, reverse=True)

    def test_endpoints_match_paper(self, table3):
        first, last = table3.rows[0], table3.rows[-1]
        assert first["empirical_pow2"] == first["paper_empirical_pow2"] == 16
        assert last["empirical_pow2"] == last["paper_empirical_pow2"] == 1


class TestFigure8:
    def test_model_and_empirical_close(self, figure8):
        """Empirical includes fill/drain, so it's above the model but
        within ~25%."""
        for row in figure8.rows:
            assert row["empirical_s"] >= row["model_s"] * 0.95
            assert row["empirical_s"] <= row["model_s"] * 1.30

    def test_low_repeats_curve_decreasing(self, figure8):
        curve = [
            r["empirical_s"] for r in figure8.rows if r["repeats"] == 1
        ]
        assert curve == sorted(curve, reverse=True)

    def test_high_repeats_curve_increasing_tail(self, figure8):
        curve = [
            r["empirical_s"] for r in figure8.rows if r["repeats"] == 64
        ]
        assert curve[-1] > min(curve)


class TestBender:
    def test_chunking_speedup_direction(self):
        res = run_bender()
        speedup = res.rows[0]["simulated"]
        assert 1.05 < speedup < 1.6

    def test_traffic_reduction_exceeds_prediction(self):
        res = run_bender()
        assert res.rows[1]["simulated"] > 2.5

    def test_snir_test_passes(self):
        res = run_bender()
        assert res.rows[2]["simulated"] == 1.0
