"""Tests for the persistent shared-memory sweep pool."""

from __future__ import annotations

import os

import pytest

from repro.errors import ConfigError, RetryExhaustedError
from repro.experiments import pool as pool_mod
from repro.experiments.pool import (
    MAX_CHUNK_CELLS,
    PersistentPool,
    get_pool,
    shutdown_pool,
)
from repro.experiments.runner import sweep_map
from repro.telemetry import names as tn
from repro.telemetry import runtime as _tm


@pytest.fixture(autouse=True)
def _fresh_pool():
    """Each test starts and ends without the process-wide singleton."""
    shutdown_pool()
    yield
    shutdown_pool()


def _scalar(a: int, b: int) -> float:
    return a * 1.25 + b / 7.0


def _pair(a: int, b: int) -> tuple[float, float]:
    return a / 3.0, b * 1.5


def _record(a: int, b: int) -> dict:
    return {"a": a, "b": b, "sum": a + b}


def _mixed(a: int, b: int) -> tuple:
    return (a * 1.0, b, a > b)  # int + bool force the pickle path


def _boom(a: int, b: int) -> float:
    if a == 3:
        raise ValueError(f"cell {a} exploded")
    return float(a + b)


def _exit_hard(a: int, b: int) -> float:
    if a == 2:
        os._exit(13)  # kills the worker process outright
    return float(a + b)


class TestDeterminism:
    def test_scalar_sweep_bit_identical_to_serial(self):
        cells = [(i, j) for i in range(8) for j in range(4)]
        serial = [_scalar(*c) for c in cells]
        out = get_pool(4).map(_scalar, cells)
        assert out == serial
        assert all(type(x) is float for x in out)

    def test_tuple_sweep_bit_identical_to_serial(self):
        cells = [(i, i + 1) for i in range(16)]
        serial = [_pair(*c) for c in cells]
        out = get_pool(2).map(_pair, cells)
        assert out == serial
        assert all(type(x) is tuple for x in out)

    def test_pickle_payloads_round_trip_type_exact(self):
        cells = [(i, 2 * i) for i in range(6)]
        assert get_pool(2).map(_record, cells) == [
            _record(*c) for c in cells
        ]
        mixed = get_pool(2).map(_mixed, cells)
        assert mixed == [_mixed(*c) for c in cells]
        # int stays int, bool stays bool — no float64 coercion.
        assert type(mixed[0][1]) is int and type(mixed[0][2]) is bool

    def test_transport_accounting(self):
        pool = get_pool(2)
        pool.map(_scalar, [(i, 0) for i in range(8)])
        assert pool.stats.shm_results > 0
        pool.map(_record, [(i, 0) for i in range(8)])
        assert pool.stats.pickle_results > 0

    def test_sweep_map_parallel_matches_serial(self):
        cells = [(i, i) for i in range(10)]
        serial = sweep_map(_scalar, cells, memo={})
        par = sweep_map(
            _scalar, cells, jobs=4, memo={}, pool="persistent"
        )
        assert par == serial

    def test_small_chunks_interleave_correctly(self):
        cells = [(i, 1) for i in range(40)]
        out = get_pool(3).map(_scalar, cells, chunk_cells=2)
        assert out == [_scalar(*c) for c in cells]


class TestLifecycle:
    def test_workers_persist_across_maps(self):
        pool = get_pool(2)
        pool.map(_scalar, [(1, 1)])
        spawned = pool.stats.workers_spawned
        pool.map(_scalar, [(2, 2), (3, 3)])
        assert pool.stats.workers_spawned == spawned

    def test_get_pool_grows_but_reuses_singleton(self):
        small = get_pool(1)
        big = get_pool(4)
        assert big is small
        assert big.size == 4

    def test_shutdown_then_get_pool_respawns(self):
        first = get_pool(1)
        first.map(_scalar, [(1, 1)])
        shutdown_pool()
        assert not first.alive
        second = get_pool(1)
        assert second is not first
        assert second.map(_scalar, [(5, 5)]) == [_scalar(5, 5)]

    def test_bad_size_rejected(self):
        with pytest.raises(ConfigError):
            PersistentPool(0)

    def test_chunk_size_bounds(self):
        pool = PersistentPool(2)
        assert pool.chunk_size(1) == 1
        assert pool.chunk_size(10_000) == MAX_CHUNK_CELLS
        assert pool.chunk_size(16) == 2  # ~4 chunks per worker


class TestChunkTaper:
    """Trailing chunk sizes halve toward the end of the sweep, so one
    expensive tail cell serializes at most a small final chunk."""

    def test_spans_cover_cells_exactly_once(self):
        for ncells in (1, 2, 5, 16, 63, 64, 65, 256, 1000):
            for step in (1, 2, 7, 64):
                spans = PersistentPool.chunk_spans(ncells, step)
                covered = [i for lo, hi in spans for i in range(lo, hi)]
                assert covered == list(range(ncells)), (ncells, step)

    def test_tail_tapers_to_one(self):
        spans = PersistentPool.chunk_spans(256, 64)
        sizes = [hi - lo for lo, hi in spans]
        assert sizes[:3] == [64, 64, 64]  # bulk keeps full chunks
        assert sizes[3:] == [32, 16, 8, 4, 2, 1, 1]  # halving tail
        assert sizes[-1] == 1

    def test_taper_never_exceeds_step(self):
        for ncells, step in ((500, 64), (130, 64), (40, 8)):
            sizes = [
                hi - lo
                for lo, hi in PersistentPool.chunk_spans(ncells, step)
            ]
            assert max(sizes) <= step
            assert min(sizes) >= 1
            # the final chunk is always small: an expensive tail cell
            # cannot serialize a full-size chunk behind it
            assert sizes[-1] == 1

    def test_deterministic(self):
        assert PersistentPool.chunk_spans(777, 64) == (
            PersistentPool.chunk_spans(777, 64)
        )

    def test_map_results_unaffected_by_taper(self):
        cells = [(i, 3) for i in range(130)]
        pool = get_pool(4)
        out = pool.map(_scalar, cells)
        assert out == [_scalar(*c) for c in cells]
        # stats recorded the tapered sizes (bounded summary, not a list)
        assert pool.stats.chunk_cells.min == 1
        assert pool.stats.chunk_cells.max == pool.chunk_size(len(cells))
        assert pool.stats.chunk_cells.total == len(cells)
        assert pool.stats.chunk_cells.count == pool.stats.chunks


class TestFailure:
    def test_cell_exception_propagates(self):
        pool = get_pool(2)
        with pytest.raises(ValueError, match="exploded"):
            pool.map(_boom, [(i, 0) for i in range(6)], chunk_cells=1)

    def test_pool_usable_after_cell_exception(self):
        pool = get_pool(2)
        with pytest.raises(ValueError):
            pool.map(_boom, [(3, 0)])
        assert pool.map(_scalar, [(1, 1)]) == [_scalar(1, 1)]

    def test_killed_worker_is_respawned_and_sweep_completes(self):
        pool = get_pool(2)
        pool.map(_scalar, [(i, 0) for i in range(4)])  # spawn workers
        victim = pool._workers[0].process
        victim.kill()
        victim.join(timeout=5)
        cells = [(i, 1) for i in range(32)]
        out = pool.map(_scalar, cells, chunk_cells=2)
        assert out == [_scalar(*c) for c in cells]
        assert pool.stats.respawns >= 1

    def test_crash_loop_raises_retry_exhausted(self):
        pool = get_pool(2)
        with pytest.raises(RetryExhaustedError) as excinfo:
            pool.map(_exit_hard, [(2, 0)])
        assert excinfo.value.attempts == pool_mod._MAX_CHUNK_ATTEMPTS
        assert not pool.alive  # crash loop tears the pool down


class TestMemoIntegration:
    def test_memo_warm_through_skips_redispatch(self):
        memo: dict = {}
        cells = [(i, 1) for i in range(8)]
        first = sweep_map(
            _scalar, cells, jobs=2, memo=memo, pool="persistent"
        )
        pool = pool_mod._POOL
        assert pool is not None
        dispatched = pool.stats.cells
        second = sweep_map(
            _scalar, cells, jobs=2, memo=memo, pool="persistent"
        )
        assert second == first
        assert pool.stats.cells == dispatched  # all cells memo hits

    def test_memo_warm_across_functions_sharing_cells(self):
        memo: dict = {}
        sweep_map(_scalar, [(1, 1)], jobs=2, memo=memo, pool="persistent")
        # Different fn, same cell: distinct key, so it must compute.
        out = sweep_map(
            _pair, [(1, 1)], jobs=2, memo=memo, pool="persistent"
        )
        assert out == [_pair(1, 1)]
        assert len(memo) == 2


class TestTelemetry:
    def test_map_emits_sweep_metrics(self):
        pool = get_pool(2)
        with _tm.telemetry_session() as tel:
            pool.map(_scalar, [(i, 0) for i in range(8)], chunk_cells=2)
        snap = tel.metrics.snapshot()
        assert snap[tn.SWEEP_CELLS_TOTAL]["series"][0]["value"] == 8.0
        # 8 cells at chunk_cells=2 taper as 2,2,2,1,1 -> 5 chunks
        assert snap[tn.SWEEP_CHUNKS_TOTAL]["series"][0]["value"] == 5.0
        assert snap[tn.SWEEP_WORKERS]["series"][0]["value"] == 2.0
        transports = {
            tuple(s["labels"].items()): s["value"]
            for s in snap[tn.SWEEP_RESULTS_TOTAL]["series"]
        }
        assert transports[(("transport", "shm"),)] == 5.0
        assert snap[tn.SWEEP_DISPATCH_SECONDS_TOTAL]["series"][0][
            "value"
        ] > 0.0

    def test_no_session_no_emission(self):
        pool = get_pool(1)
        pool.map(_scalar, [(1, 1)])  # must not raise without a session
