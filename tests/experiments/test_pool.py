"""Tests for the persistent shared-memory sweep pool."""

from __future__ import annotations

import os
import time

import pytest

from repro.errors import ConfigError, RetryExhaustedError
from repro.experiments import pool as pool_mod
from repro.experiments.pool import (
    MAX_CHUNK_CELLS,
    PersistentPool,
    get_pool,
    shutdown_pool,
)
from repro.experiments.runner import sweep_map
from repro.telemetry import names as tn
from repro.telemetry import runtime as _tm


@pytest.fixture(autouse=True)
def _fresh_pool():
    """Each test starts and ends without the process-wide singleton."""
    shutdown_pool()
    yield
    shutdown_pool()


def _scalar(a: int, b: int) -> float:
    return a * 1.25 + b / 7.0


def _pair(a: int, b: int) -> tuple[float, float]:
    return a / 3.0, b * 1.5


def _record(a: int, b: int) -> dict:
    return {"a": a, "b": b, "sum": a + b}


def _mixed(a: int, b: int) -> tuple:
    return (a * 1.0, b, a > b)  # int + bool force the pickle path


def _boom(a: int, b: int) -> float:
    if a == 3:
        raise ValueError(f"cell {a} exploded")
    return float(a + b)


def _exit_hard(a: int, b: int) -> float:
    if a == 2:
        os._exit(13)  # kills the worker process outright
    return float(a + b)


def _sleepy(i: int, s: float) -> float:
    time.sleep(s)
    return i * 1.0 + s


class TestDeterminism:
    def test_scalar_sweep_bit_identical_to_serial(self):
        cells = [(i, j) for i in range(8) for j in range(4)]
        serial = [_scalar(*c) for c in cells]
        out = get_pool(4).map(_scalar, cells)
        assert out == serial
        assert all(type(x) is float for x in out)

    def test_tuple_sweep_bit_identical_to_serial(self):
        cells = [(i, i + 1) for i in range(16)]
        serial = [_pair(*c) for c in cells]
        out = get_pool(2).map(_pair, cells)
        assert out == serial
        assert all(type(x) is tuple for x in out)

    def test_pickle_payloads_round_trip_type_exact(self):
        cells = [(i, 2 * i) for i in range(6)]
        assert get_pool(2).map(_record, cells) == [
            _record(*c) for c in cells
        ]
        mixed = get_pool(2).map(_mixed, cells)
        assert mixed == [_mixed(*c) for c in cells]
        # int stays int, bool stays bool — no float64 coercion.
        assert type(mixed[0][1]) is int and type(mixed[0][2]) is bool

    def test_transport_accounting(self):
        pool = get_pool(2)
        pool.map(_scalar, [(i, 0) for i in range(8)])
        assert pool.stats.shm_results > 0
        pool.map(_record, [(i, 0) for i in range(8)])
        assert pool.stats.pickle_results > 0

    def test_sweep_map_parallel_matches_serial(self):
        cells = [(i, i) for i in range(10)]
        serial = sweep_map(_scalar, cells, memo={})
        par = sweep_map(
            _scalar, cells, jobs=4, memo={}, pool="persistent"
        )
        assert par == serial

    def test_small_chunks_interleave_correctly(self):
        cells = [(i, 1) for i in range(40)]
        out = get_pool(3).map(_scalar, cells, chunk_cells=2)
        assert out == [_scalar(*c) for c in cells]


class TestLifecycle:
    def test_workers_persist_across_maps(self):
        pool = get_pool(2)
        pool.map(_scalar, [(1, 1)])
        spawned = pool.stats.workers_spawned
        pool.map(_scalar, [(2, 2), (3, 3)])
        assert pool.stats.workers_spawned == spawned

    def test_get_pool_grows_but_reuses_singleton(self):
        small = get_pool(1)
        big = get_pool(4)
        assert big is small
        assert big.size == 4

    def test_shutdown_then_get_pool_respawns(self):
        first = get_pool(1)
        first.map(_scalar, [(1, 1)])
        shutdown_pool()
        assert not first.alive
        second = get_pool(1)
        assert second is not first
        assert second.map(_scalar, [(5, 5)]) == [_scalar(5, 5)]

    def test_bad_size_rejected(self):
        with pytest.raises(ConfigError):
            PersistentPool(0)

    def test_chunk_size_bounds(self):
        pool = PersistentPool(2)
        assert pool.chunk_size(1) == 1
        assert pool.chunk_size(10_000) == MAX_CHUNK_CELLS
        assert pool.chunk_size(16) == 2  # ~4 chunks per worker


class TestChunkTaper:
    """Trailing chunk sizes halve toward the end of the sweep, so one
    expensive tail cell serializes at most a small final chunk."""

    def test_spans_cover_cells_exactly_once(self):
        for ncells in (1, 2, 5, 16, 63, 64, 65, 256, 1000):
            for step in (1, 2, 7, 64):
                spans = PersistentPool.chunk_spans(ncells, step)
                covered = [i for lo, hi in spans for i in range(lo, hi)]
                assert covered == list(range(ncells)), (ncells, step)

    def test_tail_tapers_to_one(self):
        spans = PersistentPool.chunk_spans(256, 64)
        sizes = [hi - lo for lo, hi in spans]
        assert sizes[:3] == [64, 64, 64]  # bulk keeps full chunks
        assert sizes[3:] == [32, 16, 8, 4, 2, 1, 1]  # halving tail
        assert sizes[-1] == 1

    def test_taper_never_exceeds_step(self):
        for ncells, step in ((500, 64), (130, 64), (40, 8)):
            sizes = [
                hi - lo
                for lo, hi in PersistentPool.chunk_spans(ncells, step)
            ]
            assert max(sizes) <= step
            assert min(sizes) >= 1
            # the final chunk is always small: an expensive tail cell
            # cannot serialize a full-size chunk behind it
            assert sizes[-1] == 1

    def test_deterministic(self):
        assert PersistentPool.chunk_spans(777, 64) == (
            PersistentPool.chunk_spans(777, 64)
        )

    def test_map_results_unaffected_by_taper(self):
        cells = [(i, 3) for i in range(130)]
        pool = get_pool(4)
        out = pool.map(_scalar, cells)
        assert out == [_scalar(*c) for c in cells]
        # stats recorded the tapered sizes (bounded summary, not a list)
        assert pool.stats.chunk_cells.min == 1
        assert pool.stats.chunk_cells.max == pool.chunk_size(len(cells))
        assert pool.stats.chunk_cells.total == len(cells)
        assert pool.stats.chunk_cells.count == pool.stats.chunks


class TestFailure:
    def test_cell_exception_propagates(self):
        pool = get_pool(2)
        with pytest.raises(ValueError, match="exploded"):
            pool.map(_boom, [(i, 0) for i in range(6)], chunk_cells=1)

    def test_pool_usable_after_cell_exception(self):
        pool = get_pool(2)
        with pytest.raises(ValueError):
            pool.map(_boom, [(3, 0)])
        assert pool.map(_scalar, [(1, 1)]) == [_scalar(1, 1)]

    def test_killed_worker_is_respawned_and_sweep_completes(self):
        pool = get_pool(2)
        pool.map(_scalar, [(i, 0) for i in range(4)])  # spawn workers
        victim = pool._workers[0].process
        victim.kill()
        victim.join(timeout=5)
        cells = [(i, 1) for i in range(32)]
        out = pool.map(_scalar, cells, chunk_cells=2)
        assert out == [_scalar(*c) for c in cells]
        assert pool.stats.respawns >= 1

    def test_crash_loop_raises_retry_exhausted(self):
        pool = get_pool(2)
        with pytest.raises(RetryExhaustedError) as excinfo:
            pool.map(_exit_hard, [(2, 0)])
        assert excinfo.value.attempts == pool_mod._MAX_CHUNK_ATTEMPTS
        assert not pool.alive  # crash loop tears the pool down


class TestMemoIntegration:
    def test_memo_warm_through_skips_redispatch(self):
        memo: dict = {}
        cells = [(i, 1) for i in range(8)]
        first = sweep_map(
            _scalar, cells, jobs=2, memo=memo, pool="persistent"
        )
        pool = pool_mod._POOL
        assert pool is not None
        dispatched = pool.stats.cells
        second = sweep_map(
            _scalar, cells, jobs=2, memo=memo, pool="persistent"
        )
        assert second == first
        assert pool.stats.cells == dispatched  # all cells memo hits

    def test_memo_warm_across_functions_sharing_cells(self):
        memo: dict = {}
        sweep_map(_scalar, [(1, 1)], jobs=2, memo=memo, pool="persistent")
        # Different fn, same cell: distinct key, so it must compute.
        out = sweep_map(
            _pair, [(1, 1)], jobs=2, memo=memo, pool="persistent"
        )
        assert out == [_pair(1, 1)]
        assert len(memo) == 2


class TestCostModel:
    """The per-function EWMA cost model behind deadlines and sizing."""

    def test_estimates_are_per_function(self):
        pool = PersistentPool(2)
        pool._observe_chunk("cheap", 4e-4, 1e-4, 4)
        pool._observe_chunk("heavy", 40.0, 10.0, 4)
        assert pool._deadline_s("cheap", 4) < pool._deadline_s("heavy", 4)
        # A cheap function's deadline stays at the floor even after a
        # heavy function trained the model.
        assert pool._deadline_s("cheap", 1) == pool.min_deadline_s

    def test_cross_sweep_contamination_fixed(self):
        # The bug this guards against: thousands of microsecond cells
        # (a table2-style sweep) used to train one pool-lifetime
        # scalar EWMA, handing the next sweep's heavy cells deadlines
        # orders of magnitude too tight. A function the model has not
        # seen must always start from the cold deadline.
        pool = PersistentPool(2)
        for _ in range(50):
            pool._observe_chunk("micro_cell", 8e-5, 1e-5, 8)
        assert (
            pool._deadline_s("figure7_cell", 8) == pool.cold_deadline_s
        )

    def test_deadline_covers_observed_peak_cell(self):
        # One observed slow cell must keep deadlines above it, so a
        # chunk containing the sweep's heavy cell does not expire
        # spuriously even when the mean is small.
        pool = PersistentPool(2, deadline_factor=2.0)
        pool._observe_chunk("f", 0.6, 0.5, 64)  # mean ~9ms, peak 500ms
        assert pool._deadline_s("f", 1) >= 2.0 * 0.5

    def test_observation_uses_compute_time_not_queue_wait(self):
        # With _PREFETCH=2 a single worker holds two chunks at once;
        # the parent-side round trip of the queued chunk includes the
        # running chunk's whole compute time. The estimate must come
        # from worker-reported compute seconds instead.
        pool = PersistentPool(1)
        try:
            cells = [(i, 0.05) for i in range(4)]
            out = pool.map(_sleepy, cells, chunk_cells=1)
            assert out == [i * 1.0 + 0.05 for i in range(4)]
            cost = pool._cell_cost[pool_mod.cost_key(_sleepy)]
            # True per-cell compute is ~50ms; the old send-to-receive
            # measurement averaged ~2x that on a saturated worker.
            assert 0.03 < cost.mean_s < 0.075
        finally:
            pool.shutdown()


class TestAdaptiveSpans:
    """Skew-measured chunk sizing with the static taper as fallback."""

    KEY = "cell_fn"

    def test_cold_model_falls_back_to_taper(self):
        pool = PersistentPool(4)
        assert pool.plan_spans(130, 9, self.KEY) == (
            PersistentPool.chunk_spans(130, 9)
        )

    def test_calm_sweep_keeps_taper(self):
        pool = PersistentPool(4)
        for _ in range(4):  # uniform 30ms cells: skew ~1
            pool._observe_chunk(self.KEY, 0.24, 0.03, 8)
        assert pool.plan_spans(64, 8, self.KEY) == (
            PersistentPool.chunk_spans(64, 8)
        )

    def test_microsecond_noise_never_engages(self):
        # Tiny cells have noisy max/mean ratios; below the peak floor
        # the skew signal is ignored no matter how large the ratio.
        pool = PersistentPool(4)
        pool._observe_chunk(self.KEY, 8e-5, 5e-5, 8)  # skew 5 but ~us
        assert pool.plan_spans(64, 8, self.KEY) == (
            PersistentPool.chunk_spans(64, 8)
        )

    def test_skewed_sweep_shrinks_chunks(self):
        pool = PersistentPool(4)
        # mean 10ms with a 400ms straggler cell: skew 40
        pool._observe_chunk(self.KEY, 0.08, 0.4, 8)
        pool._observe_chunk(self.KEY, 0.08, 0.01, 8)
        spans = pool.plan_spans(96, 48, self.KEY)
        sizes = [hi - lo for lo, hi in spans]
        assert max(sizes) < 48
        covered = [i for lo, hi in spans for i in range(lo, hi)]
        assert covered == list(range(96))

    def test_adaptive_off_pins_taper(self):
        pool = PersistentPool(4, adaptive=False)
        pool._observe_chunk(self.KEY, 0.08, 0.4, 8)
        assert pool.plan_spans(96, 48, self.KEY) == (
            PersistentPool.chunk_spans(96, 48)
        )

    def test_extreme_skew_floors_at_one_cell(self):
        pool = PersistentPool(4)
        pool._observe_chunk(self.KEY, 0.101, 0.1, 101)  # skew ~100
        spans = pool.plan_spans(24, 8, self.KEY)
        assert [hi - lo for lo, hi in spans] == [1] * 24


class TestWorkStealing:
    def test_idle_worker_steals_prefetched_backlog(self):
        # Cell 0 is a 0.5s straggler; with chunk_cells=2 the straggler
        # chunk and its queued neighbour both land on one worker. The
        # other worker drains the rest of the sweep, goes idle, and
        # must steal the queued chunk instead of letting it wait out
        # the straggler (deadlines here are far too generous to help).
        pool = PersistentPool(2, steal_min_s=0.05)
        cells = [(0, 0.5)] + [(i, 0.01) for i in range(1, 8)]
        try:
            out = pool.map(_sleepy, cells, chunk_cells=2)
        finally:
            pool.shutdown()
        assert out == [i * 1.0 + s for i, s in cells]
        assert pool.stats.steals >= 1
        # Stealing is reassignment, not speculation: nothing expired.
        assert pool.stats.deadline_expiries == 0
        assert pool.stats.speculative == 0

    def test_stealing_disabled_with_adaptive_off(self):
        pool = PersistentPool(2, adaptive=False, steal_min_s=0.05)
        cells = [(0, 0.3)] + [(i, 0.01) for i in range(1, 8)]
        try:
            out = pool.map(_sleepy, cells, chunk_cells=2)
        finally:
            pool.shutdown()
        assert out == [i * 1.0 + s for i, s in cells]
        assert pool.stats.steals == 0


class TestAutoscale:
    def test_target_workers_unit(self):
        pool = PersistentPool(8)
        # Unknown function: no projection, full complement.
        assert pool._target_workers("new_fn", 1000) == 8
        # Known-cheap function: floor.
        pool._observe_chunk("cheap", 1e-3, 1e-4, 10)
        assert pool._target_workers("cheap", 100) == pool.min_workers
        # Known-heavy function: ceiling.
        pool._observe_chunk("heavy", 1.0, 0.5, 2)
        assert pool._target_workers("heavy", 100) == 8

    def test_autoscale_off_pins_size(self):
        pool = PersistentPool(8, autoscale=False)
        pool._observe_chunk("cheap", 1e-3, 1e-4, 10)
        assert pool._target_workers("cheap", 100) == 8

    def test_min_workers_clamped_to_size(self):
        pool = PersistentPool(2, min_workers=16)
        assert pool.min_workers == 2
        with pytest.raises(ConfigError):
            PersistentPool(2, min_workers=0)

    def test_cheap_sweep_scales_down_to_floor(self):
        pool = PersistentPool(4)
        cells = [(i, 1) for i in range(32)]
        serial = [_scalar(*c) for c in cells]
        try:
            assert pool.map(_scalar, cells) == serial
            assert pool.stats.workers_spawned == 4  # cold: full size
            assert pool.map(_scalar, cells) == serial
            # Trained model projects ~nothing: the pool retires down
            # to the floor instead of paying 4 pipes per sweep.
            assert len(pool._workers) == pool.min_workers == 2
            assert pool.stats.scaled_down >= 2
        finally:
            pool.shutdown()

    def test_scales_back_up_when_cells_get_heavy(self):
        pool = PersistentPool(4, scale_quantum_s=0.05)
        try:
            pool.map(_sleepy, [(i, 0.001) for i in range(8)])
            cells = [(i, 0.08) for i in range(16)]
            out = pool.map(_sleepy, cells, chunk_cells=1)
            assert out == [i * 1.0 + 0.08 for i in range(16)]
            # The stale-cheap projection started the sweep at the
            # floor; observed 80ms cells must grow the pool mid-call.
            assert pool.stats.scaled_up >= 1
        finally:
            pool.shutdown()


class TestTelemetry:
    def test_map_emits_sweep_metrics(self):
        pool = get_pool(2)
        with _tm.telemetry_session() as tel:
            pool.map(_scalar, [(i, 0) for i in range(8)], chunk_cells=2)
        snap = tel.metrics.snapshot()
        assert snap[tn.SWEEP_CELLS_TOTAL]["series"][0]["value"] == 8.0
        # 8 cells at chunk_cells=2 taper as 2,2,2,1,1 -> 5 chunks
        assert snap[tn.SWEEP_CHUNKS_TOTAL]["series"][0]["value"] == 5.0
        assert snap[tn.SWEEP_WORKERS]["series"][0]["value"] == 2.0
        transports = {
            tuple(s["labels"].items()): s["value"]
            for s in snap[tn.SWEEP_RESULTS_TOTAL]["series"]
        }
        assert transports[(("transport", "shm"),)] == 5.0
        assert snap[tn.SWEEP_DISPATCH_SECONDS_TOTAL]["series"][0][
            "value"
        ] > 0.0

    def test_no_session_no_emission(self):
        pool = get_pool(1)
        pool.map(_scalar, [(1, 1)])  # must not raise without a session
