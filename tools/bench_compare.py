#!/usr/bin/env python3
"""Compare two pytest-benchmark JSON files and gate on regressions.

Usage::

    python tools/bench_compare.py BASELINE.json CURRENT.json \
        [--threshold 0.30]

Benchmarks are matched by fully-qualified name and compared on
``stats.mean``. A benchmark whose mean grew by more than ``threshold``
(default 30 %) relative to the baseline is a **regression** and makes
the script exit non-zero. Benchmarks present on only one side are
reported but never fail the gate — new benchmarks must be able to land
together with their baseline refresh, and retired ones must not haunt
the build.

The 30 % default is deliberately loose: CI runners are noisy and the
micro-benchmarks measure Python hot paths whose real optimizations are
10x+, so the gate only has to catch order-of-magnitude backslides, not
jitter. Refresh the committed baseline whenever a benchmark's profile
legitimately changes::

    PYTHONPATH=src python -m pytest benchmarks/test_bench_micro.py \
        --benchmark-only --benchmark-json=benchmarks/BENCH_micro.json

Zero dependencies beyond the standard library.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def load_means(path: Path) -> dict[str, float]:
    """Benchmark name -> mean seconds from a pytest-benchmark JSON."""
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise SystemExit(f"error: cannot read {path}: {exc}") from exc
    means: dict[str, float] = {}
    for bench in payload.get("benchmarks", []):
        name = bench.get("fullname") or bench.get("name")
        mean = bench.get("stats", {}).get("mean")
        if name and isinstance(mean, (int, float)) and mean > 0:
            means[name] = float(mean)
    if not means:
        raise SystemExit(f"error: no benchmarks found in {path}")
    return means


def compare(
    baseline: dict[str, float],
    current: dict[str, float],
    threshold: float,
) -> tuple[list[str], list[str]]:
    """Return (report lines, regression lines)."""
    lines: list[str] = []
    regressions: list[str] = []
    for name in sorted(set(baseline) | set(current)):
        base = baseline.get(name)
        cur = current.get(name)
        if base is None:
            lines.append(f"  NEW      {name}: {cur:.6f}s (no baseline)")
            continue
        if cur is None:
            lines.append(f"  MISSING  {name}: baseline {base:.6f}s")
            continue
        ratio = cur / base
        delta = (ratio - 1.0) * 100.0
        tag = "ok"
        if ratio > 1.0 + threshold:
            tag = "REGRESSED"
            regressions.append(
                f"{name}: {base:.6f}s -> {cur:.6f}s ({delta:+.1f}%)"
            )
        elif ratio < 1.0 / (1.0 + threshold):
            tag = "improved"
        lines.append(
            f"  {tag:<9} {name}: {base:.6f}s -> {cur:.6f}s ({delta:+.1f}%)"
        )
    return lines, regressions


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Fail when benchmarks regress beyond a threshold."
    )
    parser.add_argument("baseline", type=Path, help="committed baseline JSON")
    parser.add_argument("current", type=Path, help="freshly measured JSON")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.30,
        help="allowed fractional slowdown before failing (default 0.30)",
    )
    args = parser.parse_args(argv)
    if args.threshold <= 0:
        parser.error("--threshold must be positive")

    baseline = load_means(args.baseline)
    current = load_means(args.current)
    lines, regressions = compare(baseline, current, args.threshold)

    print(f"benchmark comparison ({args.baseline} -> {args.current}, "
          f"threshold {args.threshold:.0%}):")
    for line in lines:
        print(line)
    if regressions:
        print(
            f"\nFAIL: {len(regressions)} benchmark(s) regressed more "
            f"than {args.threshold:.0%}:",
            file=sys.stderr,
        )
        for reg in regressions:
            print(f"  {reg}", file=sys.stderr)
        return 1
    print("\nOK: no benchmark regressed beyond the threshold.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
