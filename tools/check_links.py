#!/usr/bin/env python3
"""Check intra-repo Markdown links.

Scans every ``*.md`` file in the repository (skipping dot-directories)
for inline links and images, and verifies that every non-external
target resolves to a real file or directory. For links into Markdown
files, ``#fragment`` anchors are checked against the target's heading
slugs (GitHub slugging rules). External schemes (http/https/mailto)
are ignored — CI must not depend on the network.

Zero dependencies; exits non-zero listing every broken link:

    python tools/check_links.py [ROOT]
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
FENCE_RE = re.compile(r"^(```|~~~).*?^\1\s*$", re.MULTILINE | re.DOTALL)
EXTERNAL = ("http://", "https://", "mailto:", "ftp://")


def slugify(heading: str) -> str:
    """GitHub's anchor slug for a heading line."""
    text = re.sub(r"`([^`]*)`", r"\1", heading)  # strip code spans
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # inline links
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def anchors_of(md_path: Path) -> set[str]:
    text = FENCE_RE.sub("", md_path.read_text(encoding="utf-8"))
    slugs: set[str] = set()
    counts: dict[str, int] = {}
    for match in HEADING_RE.finditer(text):
        slug = slugify(match.group(1))
        n = counts.get(slug, 0)
        counts[slug] = n + 1
        slugs.add(slug if n == 0 else f"{slug}-{n}")
    return slugs


def check_file(md_path: Path, root: Path) -> list[str]:
    errors: list[str] = []
    text = FENCE_RE.sub("", md_path.read_text(encoding="utf-8"))
    for match in LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(EXTERNAL):
            continue
        path_part, _, fragment = target.partition("#")
        resolved = (
            md_path if not path_part
            else (md_path.parent / path_part).resolve()
        )
        rel = md_path.relative_to(root)
        if not resolved.exists():
            errors.append(f"{rel}: broken link -> {target}")
            continue
        if fragment and resolved.suffix == ".md":
            if fragment not in anchors_of(resolved):
                errors.append(f"{rel}: missing anchor -> {target}")
    return errors


def main(argv: list[str]) -> int:
    root = Path(argv[1]).resolve() if len(argv) > 1 else (
        Path(__file__).resolve().parent.parent
    )
    md_files = sorted(
        p for p in root.rglob("*.md")
        if not any(part.startswith(".") for part in p.parts)
    )
    errors: list[str] = []
    for md in md_files:
        errors.extend(check_file(md, root))
    for err in errors:
        print(err, file=sys.stderr)
    print(f"checked {len(md_files)} Markdown files: "
          f"{len(errors)} broken link(s)")
    return 1 if errors else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
